"""Topology container and generators.

A :class:`Topology` owns the simulator, the nodes and the links, and
exposes a networkx view for shortest-path computations (the unicast
routing substrate). :class:`TopologyBuilder` provides the generators the
paper's analyses assume: balanced trees (the "fanout of 2, 20 hops deep"
million-member tree of §5.3), stars (the worst-case "no fanout except at
the root" bound of §5.1), lines, seeded random connected graphs, and a
two-level transit/stub ISP-like graph.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.errors import TopologyError
from repro.netsim.engine import Simulator
from repro.netsim.link import DEFAULT_BANDWIDTH, Link
from repro.netsim.node import Node

#: First auto-assigned unicast address (10.0.0.1).
_ADDRESS_BASE = 0x0A000001


class Topology:
    """A set of nodes wired by point-to-point links."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        seed: int = 0,
        scheduler: str = "heap",
        wheel_granularity: float = 0.001,
    ) -> None:
        self.sim = sim if sim is not None else Simulator(
            seed=seed, scheduler=scheduler, wheel_granularity=wheel_granularity
        )
        self.nodes: dict[str, Node] = {}
        self.links: list[Link] = []
        self._by_address: dict[int, Node] = {}
        self._next_address = _ADDRESS_BASE
        self._started = False

    # -- construction ------------------------------------------------------

    def add_node(self, name: str, address: Optional[int] = None) -> Node:
        if name in self.nodes:
            raise TopologyError(f"duplicate node name {name!r}")
        if address is None:
            address = self._next_address
            self._next_address += 1
        if address in self._by_address:
            raise TopologyError(f"duplicate node address {address:#x}")
        node = Node(self.sim, name, address)
        self.nodes[name] = node
        self._by_address[address] = node
        return node

    def add_link(
        self,
        a: str,
        b: str,
        delay: float = 0.001,
        bandwidth: float = DEFAULT_BANDWIDTH,
        loss: float = 0.0,
    ) -> Link:
        if a not in self.nodes or b not in self.nodes:
            missing = a if a not in self.nodes else b
            raise TopologyError(f"unknown node {missing!r}")
        if a == b:
            raise TopologyError(f"self-link on {a!r}")
        node_a, node_b = self.nodes[a], self.nodes[b]
        if node_a.interface_to(node_b) is not None:
            raise TopologyError(f"duplicate link {a!r}<->{b!r}")
        link = Link(
            self.sim,
            node_a.add_interface(),
            node_b.add_interface(),
            delay=delay,
            bandwidth=bandwidth,
            loss=loss,
        )
        self.links.append(link)
        return link

    # -- lookup ------------------------------------------------------------

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def node_by_address(self, address: int) -> Optional[Node]:
        return self._by_address.get(address)

    def link_between(self, a: str, b: str) -> Optional[Link]:
        node_a, node_b = self.node(a), self.node(b)
        iface = node_a.interface_to(node_b)
        return iface.link if iface is not None else None

    def node_names(self) -> list[str]:
        return list(self.nodes)

    # -- views ---------------------------------------------------------------

    def graph(self, only_up: bool = True) -> nx.Graph:
        """A networkx view weighted by link delay (the routing metric)."""
        graph = nx.Graph()
        graph.add_nodes_from(self.nodes)
        for link in self.links:
            if only_up and not link.up:
                continue
            graph.add_edge(link.node_a.name, link.node_b.name, weight=link.delay)
        return graph

    def is_connected(self) -> bool:
        graph = self.graph()
        return len(graph) > 0 and nx.is_connected(graph)

    # -- tracing -------------------------------------------------------------

    def attach_trace(self, trace=None):
        """Attach a :class:`repro.netsim.trace.PacketTrace` to every
        node (created if not given); returns it. Every subsequent
        tx/rx/drop network-wide lands in the trace — the debugging
        equivalent of a fleet-wide tcpdump."""
        if trace is None:
            from repro.netsim.trace import PacketTrace

            trace = PacketTrace()
        for node in self.nodes.values():
            node.trace = trace
        return trace

    def detach_trace(self) -> None:
        for node in self.nodes.values():
            node.trace = None

    def attach_observability(self, obs=None):
        """Attach a :class:`repro.obs.Observability` (created if not
        given): instruments the simulator's dispatch loop and every
        node and link with registry metrics; returns the obs object."""
        from repro.obs.hooks import Observability, attach_topology

        if obs is None:
            obs = Observability()
        return attach_topology(self, obs)

    # -- lifecycle -----------------------------------------------------------

    def start(self, nodes: Optional[list[str]] = None) -> None:
        """Start protocol agents once wiring is complete.

        ``nodes`` restricts the start to a subset (by name) — used by
        the parallel-simulation workers, which build the full topology
        in every process (so addressing and routing are identical) but
        only animate the nodes their partition owns; the rest stay
        inert ghosts whose traffic arrives via cut-link proxies.
        """
        if self._started:
            return
        self._started = True
        if nodes is None:
            for node in self.nodes.values():
                node.start_agents()
        else:
            for name in nodes:
                self.node(name).start_agents()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        self.start()
        return self.sim.run(until=until, max_events=max_events)


class TopologyBuilder:
    """Named topology generators used throughout tests and benchmarks."""

    @staticmethod
    def line(n: int, delay: float = 0.001, seed: int = 0, scheduler: str = "heap") -> Topology:
        """n nodes in a chain: n0 - n1 - ... - n(n-1)."""
        if n < 1:
            raise TopologyError("line needs at least 1 node")
        topo = Topology(seed=seed, scheduler=scheduler)
        for i in range(n):
            topo.add_node(f"n{i}")
        for i in range(n - 1):
            topo.add_link(f"n{i}", f"n{i + 1}", delay=delay)
        return topo

    @staticmethod
    def star(n_leaves: int, delay: float = 0.001, seed: int = 0, scheduler: str = "heap") -> Topology:
        """A hub ("hub") with ``n_leaves`` leaves ("leaf0"...)."""
        if n_leaves < 1:
            raise TopologyError("star needs at least 1 leaf")
        topo = Topology(seed=seed, scheduler=scheduler)
        topo.add_node("hub")
        for i in range(n_leaves):
            topo.add_node(f"leaf{i}")
            topo.add_link("hub", f"leaf{i}", delay=delay)
        return topo

    @staticmethod
    def balanced_tree(
        depth: int,
        fanout: int = 2,
        delay: float = 0.001,
        seed: int = 0,
        scheduler: str = "heap",
    ) -> Topology:
        """A rooted balanced tree. Node names: "r" (root), then
        "d<level>_<index>" per level. §5.3's million-member tree is
        ``balanced_tree(depth=20, fanout=2)`` (not materialized at that
        size; benches use scaled-down instances plus the analytic model).
        """
        if depth < 0 or fanout < 1:
            raise TopologyError("tree needs depth >= 0 and fanout >= 1")
        topo = Topology(seed=seed, scheduler=scheduler)
        topo.add_node("r")
        previous = ["r"]
        for level in range(1, depth + 1):
            current = []
            index = 0
            for parent in previous:
                for _ in range(fanout):
                    name = f"d{level}_{index}"
                    topo.add_node(name)
                    topo.add_link(parent, name, delay=delay)
                    current.append(name)
                    index += 1
            previous = current
        return topo

    @staticmethod
    def random_connected(
        n: int,
        extra_edge_prob: float = 0.08,
        delay: float = 0.001,
        seed: int = 0,
        scheduler: str = "heap",
    ) -> Topology:
        """A connected random graph: a random spanning tree plus extra
        random edges with probability ``extra_edge_prob`` per pair.
        Deterministic for a given seed.
        """
        if n < 1:
            raise TopologyError("random graph needs at least 1 node")
        topo = Topology(seed=seed, scheduler=scheduler)
        rng = topo.sim.rng
        names = [f"n{i}" for i in range(n)]
        for name in names:
            topo.add_node(name)
        # Random spanning tree: attach each new node to a random earlier one.
        for i in range(1, n):
            j = rng.randrange(i)
            topo.add_link(names[i], names[j], delay=delay * rng.uniform(0.5, 1.5))
        # Extra shortcut edges.
        for i in range(n):
            for j in range(i + 1, n):
                if topo.node(names[i]).interface_to(topo.node(names[j])) is not None:
                    continue
                if rng.random() < extra_edge_prob:
                    topo.add_link(names[i], names[j], delay=delay * rng.uniform(0.5, 1.5))
        return topo

    @staticmethod
    def isp(
        n_transit: int = 4,
        stubs_per_transit: int = 3,
        hosts_per_stub: int = 2,
        core_delay: float = 0.010,
        stub_delay: float = 0.002,
        host_delay: float = 0.001,
        seed: int = 0,
        scheduler: str = "heap",
        wheel_granularity: float = 0.001,
    ) -> Topology:
        """A two-level transit/stub internetwork.

        Transit routers form a ring with chords; each transit router
        serves ``stubs_per_transit`` stub (edge) routers; each stub
        router serves ``hosts_per_stub`` hosts. Host names are
        "h<t>_<s>_<k>"; stub routers "e<t>_<s>"; transit routers "t<t>".

        ``wheel_granularity`` tunes the wheel scheduler's slot width
        (dispatch order is granularity-independent); bulk-scheduled
        storms want coarser slots so batch dispatch sees full buckets.
        """
        if n_transit < 1:
            raise TopologyError("need at least one transit router")
        topo = Topology(
            seed=seed, scheduler=scheduler, wheel_granularity=wheel_granularity
        )
        for t in range(n_transit):
            topo.add_node(f"t{t}")
        if n_transit == 2:
            topo.add_link("t0", "t1", delay=core_delay)
        elif n_transit > 2:
            for t in range(n_transit):
                topo.add_link(f"t{t}", f"t{(t + 1) % n_transit}", delay=core_delay)
        # Chords across the ring for path diversity.
        if n_transit >= 4:
            topo.add_link("t0", f"t{n_transit // 2}", delay=core_delay)
        for t in range(n_transit):
            for s in range(stubs_per_transit):
                stub = f"e{t}_{s}"
                topo.add_node(stub)
                topo.add_link(f"t{t}", stub, delay=stub_delay)
                for k in range(hosts_per_stub):
                    host = f"h{t}_{s}_{k}"
                    topo.add_node(host)
                    topo.add_link(stub, host, delay=host_delay)
        return topo

    @staticmethod
    def lan(n_hosts: int, delay: float = 0.0001, seed: int = 0, scheduler: str = "heap") -> Topology:
        """One edge router ("gw") with ``n_hosts`` directly-attached
        hosts — the IGMP/UDP-mode test topology. (We model the LAN as a
        star of point-to-point links; the UDP-mode agent replicates
        queries to all host interfaces, which is observationally
        equivalent to a multicast-capable LAN for protocol purposes.)
        """
        topo = Topology(seed=seed, scheduler=scheduler)
        topo.add_node("gw")
        for i in range(n_hosts):
            topo.add_node(f"h{i}")
            topo.add_link("gw", f"h{i}", delay=delay)
        return topo
