"""Discrete-event simulation engine.

A deterministic, single-threaded event loop. Events are ordered by
``(time, sequence)`` where ``sequence`` is a monotonically increasing
insertion counter, so simultaneous events fire in schedule order and
every run with the same seed and schedule is bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Optional

from repro.errors import SimulationError

#: Below this queue size, compaction is never worth the heapify cost.
_COMPACT_MIN_QUEUE = 64


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so the heap is deterministic.
    Cancelled events are skipped when popped; the owning simulator
    additionally compacts the heap when cancelled events pile up (see
    :meth:`Simulator._note_cancelled`).
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    name: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    #: The simulator whose heap holds this event (None once popped or
    #: for hand-built events), so cancellation can keep live/cancelled
    #: bookkeeping exact.
    owner: Optional["Simulator"] = field(compare=False, default=None, repr=False)
    _in_queue: bool = field(compare=False, default=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it comes due."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None and self._in_queue:
            self.owner._note_cancelled()


class Simulator:
    """A seeded discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator's private :class:`random.Random`. All
        stochastic substrate behaviour (link loss, jitter, workload
        generators that accept a simulator) draws from this generator,
        which makes whole-system runs reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: list[Event] = []
        self._live = 0
        self._cancelled = 0
        self._running = False
        self.rng = random.Random(seed)
        self.events_processed = 0
        #: Observability hooks called as ``fn(sim, event, wall_seconds)``
        #: after each event executes (see :mod:`repro.obs.hooks`). The
        #: dispatch loop takes the zero-overhead path when empty.
        self._dispatch_listeners: list[Callable[["Simulator", Event, float], None]] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        name: str = "",
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        event = Event(
            time=self._now + delay, seq=self._seq, action=action, name=name,
            owner=self, _in_queue=True,
        )
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        name: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute simulated time ``time``."""
        return self.schedule(time - self._now, action, name=name)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        while self._queue and self._queue[0].cancelled:
            dead = heapq.heappop(self._queue)
            dead._in_queue = False
            self._cancelled -= 1
        if not self._queue:
            return None
        return self._queue[0].time

    def _note_cancelled(self) -> None:
        """Bookkeeping for an in-queue cancellation: keep ``pending()``
        O(1) and compact the heap once cancelled events outnumber live
        ones (otherwise long-lived runs that churn timers leak)."""
        self._live -= 1
        self._cancelled += 1
        if (
            len(self._queue) >= _COMPACT_MIN_QUEUE
            and self._cancelled * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        for event in self._queue:
            if event.cancelled:
                event._in_queue = False
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0

    def _dispatch(self, event: Event) -> None:
        """Fire one live, already-popped event."""
        self._live -= 1
        self._now = event.time
        self.events_processed += 1
        if self._dispatch_listeners:
            started = perf_counter()
            event.action()
            wall = perf_counter() - started
            for listener in self._dispatch_listeners:
                listener(self, event, wall)
        else:
            event.action()

    def step(self) -> bool:
        """Run the single next event. Returns False if none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            event._in_queue = False
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._dispatch(event)
            return True
        return False

    def add_dispatch_listener(
        self, listener: Callable[["Simulator", Event, float], None]
    ) -> None:
        """Register ``listener(sim, event, wall_seconds)`` to run after
        every dispatched event (metrics/profiling hook)."""
        self._dispatch_listeners.append(listener)

    def remove_dispatch_listener(
        self, listener: Callable[["Simulator", Event, float], None]
    ) -> None:
        self._dispatch_listeners.remove(listener)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` passes, or
        ``max_events`` have fired. Returns the number of events run.

        ``until`` is inclusive: an event scheduled exactly at ``until``
        runs, and the clock is advanced to ``until`` afterwards even if
        no event lands exactly there.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        ran = 0
        try:
            # One heap touch per iteration: discard cancelled events from
            # the head, then pop-and-dispatch in the same pass (the seed
            # peeked via peek_time() and then re-examined the heap top
            # inside step() — two inspections per event).
            while True:
                if max_events is not None and ran >= max_events:
                    break
                queue = self._queue  # _compact() may rebind the list
                while queue and queue[0].cancelled:
                    dead = heapq.heappop(queue)
                    dead._in_queue = False
                    self._cancelled -= 1
                if not queue:
                    break
                if until is not None and queue[0].time > until:
                    break
                event = heapq.heappop(queue)
                event._in_queue = False
                self._dispatch(event)
                ran += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return ran

    def pending(self) -> int:
        """Number of live (non-cancelled) events in the queue. O(1):
        maintained incrementally by schedule/cancel/step."""
        return self._live


class PeriodicTask:
    """A repeating task bound to a simulator.

    Used for protocol timers (IGMP/ECMP periodic queries, keepalives).
    The task reschedules itself after each firing until stopped. The
    first firing happens ``interval`` seconds after :meth:`start`
    (optionally jittered to avoid global synchronization, per RFC-style
    timer advice).
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        action: Callable[[], None],
        name: str = "",
        jitter: float = 0.0,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        self._sim = sim
        self._interval = interval
        self._action = action
        self._name = name
        self._jitter = jitter
        self._event: Optional[Event] = None
        self._stopped = True

    @property
    def running(self) -> bool:
        return not self._stopped

    def start(self) -> None:
        if not self._stopped:
            return
        self._stopped = False
        self._schedule_next()

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _schedule_next(self) -> None:
        delay = self._interval
        if self._jitter:
            delay += self._sim.rng.uniform(-self._jitter, self._jitter)
            delay = max(delay, 1e-9)
        self._event = self._sim.schedule(delay, self._fire, name=self._name)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._action()
        if not self._stopped:
            self._schedule_next()


def call_repeatedly(
    sim: Simulator,
    interval: float,
    action: Callable[[], None],
    name: str = "",
    jitter: float = 0.0,
) -> PeriodicTask:
    """Convenience: create and start a :class:`PeriodicTask`."""
    task = PeriodicTask(sim, interval, action, name=name, jitter=jitter)
    task.start()
    return task
