"""Discrete-event simulation engine.

A deterministic, single-threaded event loop. Events are ordered by
``(time, sequence)`` where ``sequence`` is a monotonically increasing
insertion counter, so simultaneous events fire in schedule order and
every run with the same seed and schedule is bit-for-bit reproducible.

Two interchangeable schedulers back the loop (``Simulator(scheduler=)``):

* ``"heap"`` (default) — a binary heap. O(log n) per operation with a
  Python-level ``Event.__lt__`` on every sift, which dominates wall
  time once hundreds of thousands of events are pending.
* ``"wheel"`` — a timer wheel: near-future events land in per-slot
  buckets by O(1) append and each slot is sorted once when the cursor
  reaches it; far-future events overflow into a small heap and cascade
  into the wheel as their slot comes within the horizon. Dispatch
  order is identical to the heap's (same ``(time, seq)`` order), which
  ``tests/properties/test_scheduler_equivalence.py`` pins.

Seeding contract
----------------

All stochastic behaviour in the substrate draws from ``Simulator.rng``
(a private :class:`random.Random`), never from the global ``random``
module, so a run is a pure function of its seed and its schedule. The
generator is either seeded from the ``seed`` argument or injected
directly via ``rng=`` (the two are mutually exclusive). Derived
components that need their own reproducible stream — one per partition
worker in :mod:`repro.netsim.parallel`, for example — must split the
master seed with :func:`derive_seed` rather than re-using it or
reaching for global randomness; ``derive_seed`` is stable across
processes and Python versions (unlike ``hash``), which is what makes a
sharded run reproducible from the one master seed.
"""

from __future__ import annotations

import hashlib
import heapq
import random
from bisect import insort
from dataclasses import dataclass, field
from operator import attrgetter, itemgetter
from time import perf_counter
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.netsim.arena import ARENA, NATIVE

#: Below this queue size, compaction is never worth the heapify cost.
_COMPACT_MIN_QUEUE = 64

def derive_seed(seed: int, *names: object) -> int:
    """Derive a child seed from ``seed`` and a namespace path.

    Stable across processes and Python versions (sha256, not ``hash``),
    so partition workers spawned with ``multiprocessing`` agree with an
    in-process rerun. Distinct paths give independent 64-bit streams:
    ``derive_seed(seed, "worker", rank)``.
    """
    digest = hashlib.sha256(
        ("|".join([str(seed), *map(str, names)])).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


#: Total-order key shared by both schedulers. ``attrgetter`` builds the
#: ``(time, seq)`` tuple in C, so wheel-slot sorts avoid the Python
#: ``Event.__lt__`` the heap pays on every sift.
_EVENT_KEY = attrgetter("time", "seq")

#: Time key for bulk-item scans (e.g. the atomic past-time prescan).
_ITEM_TIME = itemgetter(0)


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so the schedulers are
    deterministic. Cancelled events are skipped when they come due; the
    owning simulator additionally compacts its queue when cancelled
    events pile up (see :meth:`Simulator._note_cancelled`).
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    name: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    #: The simulator whose queue holds this event (None once popped or
    #: for hand-built events), so cancellation can keep live/cancelled
    #: bookkeeping exact.
    owner: Optional["Simulator"] = field(compare=False, default=None, repr=False)
    _in_queue: bool = field(compare=False, default=False, repr=False)
    #: Incarnation counter, bumped each time the arena hands the record
    #: out for reuse. A holder that captured ``(event, event.gen)`` can
    #: tell a recycled record from the one it scheduled.
    gen: int = field(compare=False, default=0, repr=False)
    #: True for events scheduled through :meth:`Simulator.schedule_bulk`
    #: on a native-mode simulator. Pooled events are unreachable outside
    #: the engine (bulk scheduling returns a count, not the events), so
    #: recycling them after dispatch is safe by construction.
    pooled: bool = field(compare=False, default=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it comes due."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None and self._in_queue:
            self.owner._note_cancelled()

    def cancel_if(self, gen: int) -> bool:
        """Cancel only if this record is still incarnation ``gen``.

        The recycle-safe form of :meth:`cancel` for holders of a pooled
        record: capture ``event.gen`` at schedule time and pass it back
        here — a record the arena has since handed to someone else is
        left alone. Returns True if the cancellation applied.
        """
        if self.gen != gen:
            return False
        self.cancel()
        return True


#: Sentinel returned by ``TimerWheel.advance(..., allow_pure=True)``
#: when the slot it just opened is *pure* — held as lazy bulk tuples,
#: not Events. Only the fast dispatch loop asks for it (to attempt a
#: batch drain before paying materialization); every other caller gets
#: pure slots resolved transparently.
_PURE_SLOT = Event(0.0, -1, lambda: None, "__pure_slot__")


class TimerWheel:
    """A single-level timer wheel with an overflow heap.

    The wheel covers ``num_slots × granularity`` seconds of simulated
    future (the *horizon*). An event within the horizon is appended to
    the bucket for its slot — O(1), no comparisons. When the cursor
    reaches a slot, its bucket is sorted once by ``(time, seq)`` and
    becomes the *open slot*, consumed front to back. Events beyond the
    horizon go to a plain heap of ``(time, seq, event)`` tuples (tuple
    comparison stays in C) and *cascade* into buckets as the cursor
    approaches their slot, so an event is only ever promoted once.

    Dispatch order is exactly the heap scheduler's ``(time, seq)``
    order: slots partition time monotonically, each slot is sorted, and
    a late insert into the already-open slot is placed by bisection
    after the consumed prefix — its time is ``>= now``, so it can never
    sort before an already-dispatched entry.

    **Pure buckets.** On a native-mode simulator, ``schedule_bulk``
    stores in-horizon entries as references to the caller's raw
    ``(time, action)`` tuples instead of :class:`Event` objects; a
    bucket holding only such tuples is *pure* and carries side metadata
    ``[name, base_seq, tally]`` in ``_bucket_meta[index]`` (the tally —
    ``{action: [count, t_last]}`` — is built during the bulk scan, so
    the batch dispatcher consumes a pure slot in O(distinct actions)
    without touching the entries again). Pure entries are unreachable
    outside the engine (bulk scheduling returns a count), hence
    uncancellable. Every other insert path first *materializes* a pure
    bucket back into Events, so the two representations never mix in
    one bucket.
    """

    __slots__ = (
        "sim",
        "granularity",
        "num_slots",
        "_scale",
        "_buckets",
        "_bucket_entries",
        "_overflow",
        "_cursor",
        "_open",
        "_open_pos",
        "_open_pure",
        "_open_meta",
        "_bucket_meta",
        "slots_scanned",
        "cascades",
        "wheel_inserts",
        "overflow_inserts",
    )

    def __init__(
        self,
        sim: "Simulator",
        granularity: float = 0.001,
        num_slots: int = 8192,
    ) -> None:
        if granularity <= 0:
            raise SimulationError(
                f"wheel granularity must be positive, got {granularity}"
            )
        if num_slots < 2:
            raise SimulationError(f"wheel needs >= 2 slots, got {num_slots}")
        self.sim = sim
        self.granularity = granularity
        self.num_slots = num_slots
        self._scale = 1.0 / granularity
        self._buckets: list[list[Event]] = [[] for _ in range(num_slots)]
        self._bucket_entries = 0
        self._overflow: list[tuple[float, int, Event]] = []
        self._cursor = 0
        self._open: list = []
        self._open_pos = 0
        #: True while the open slot is *pure* — still held as lazy bulk
        #: tuples. Resolved (materialized into sorted Events) before any
        #: per-event consumption; the batch dispatcher engages first.
        self._open_pure = False
        #: Metadata of the pure open slot: ``[name, base_seq, tally]``
        #: moved out of ``_bucket_meta`` when the slot opened.
        self._open_meta: Optional[list] = None
        #: Per-bucket purity marker: non-None ⇔ the bucket holds only
        #: lazy ``(time, action)`` bulk tuples, and the entry is their
        #: ``[name, base_seq, tally]`` metadata. ``base_seq`` is the seq
        #: of the bucket's first entry (entries are seq-consecutive in
        #: list order); ``tally`` maps action -> ``[count, t_last]`` and
        #: is built during the bulk scan so batch dispatch never has to
        #: walk the entries. Every empty-to-non-empty bucket transition
        #: writes this slot (bulk fill sets metadata, everything else
        #: leaves it None by materializing first).
        self._bucket_meta: list = [None] * num_slots
        self.slots_scanned = 0
        self.cascades = 0
        self.wheel_inserts = 0
        self.overflow_inserts = 0

    def __len__(self) -> int:
        """Total entries held (live + not-yet-skipped cancelled)."""
        return (
            len(self._open) - self._open_pos
            + self._bucket_entries
            + len(self._overflow)
        )

    def insert(self, event: Event) -> None:
        slot = int(event.time * self._scale)
        cursor = self._cursor
        if slot <= cursor:
            # Lands in (or before) the open slot. Its time is >= now,
            # so bisecting after the consumed prefix preserves order.
            if self._open_pure:
                self._resolve_open()
            insort(self._open, event, lo=self._open_pos, key=_EVENT_KEY)
            self.wheel_inserts += 1
        elif slot < cursor + self.num_slots:
            index = slot % self.num_slots
            if self._bucket_meta[index] is not None:
                self._materialize_bucket(index)
            self._buckets[index].append(event)
            self._bucket_entries += 1
            self.wheel_inserts += 1
        else:
            heapq.heappush(self._overflow, (event.time, event.seq, event))
            self.overflow_inserts += 1

    def _cascade(self) -> None:
        """Promote overflow events whose slot entered the horizon."""
        overflow = self._overflow
        if not overflow:
            return
        cursor = self._cursor
        limit = cursor + self.num_slots
        scale = self._scale
        while overflow and int(overflow[0][0] * scale) < limit:
            event = heapq.heappop(overflow)[2]
            self.cascades += 1
            slot = int(event.time * scale)
            if slot <= cursor:
                if self._open_pure:
                    self._resolve_open()
                insort(self._open, event, lo=self._open_pos, key=_EVENT_KEY)
            else:
                index = slot % self.num_slots
                if self._bucket_meta[index] is not None:
                    self._materialize_bucket(index)
                self._buckets[index].append(event)
                self._bucket_entries += 1

    def _materialize(self, entries: list, meta: list) -> list[Event]:
        """Turn lazy ``(time, action)`` bulk tuples into real (pooled
        where possible) Events, assigning the seqs reserved for them:
        ``meta[1] + i`` for the entry at position ``i``. Order is
        preserved; callers sort if they need to."""
        sim = self.sim
        arena = sim._arena
        pooled = arena is not None
        name = meta[0]
        seq = meta[1] - 1
        events: list[Event] = []
        append = events.append
        for time, action in entries:
            seq += 1
            event = arena.acquire() if pooled else None
            if event is not None:
                event.gen += 1
                event.time = time
                event.seq = seq
                event.action = action
                event.name = name
                event.cancelled = False
                event.owner = sim
                event._in_queue = True
                event.pooled = True
            else:
                event = Event(time, seq, action, name, False, sim, True, 0, pooled)
            append(event)
        return events

    def _resolve_open(self) -> None:
        """Materialize a pure open slot into sorted Events (the batch
        dispatcher declined, or a caller needs per-event access)."""
        events = self._materialize(self._open, self._open_meta)
        events.sort(key=_EVENT_KEY)
        self._open = events
        self._open_pure = False
        self._open_meta = None

    def _materialize_bucket(self, index: int) -> None:
        """Materialize a pure bucket in place (unsorted — the slot sort
        at open handles ordering) so an Event can be appended to it."""
        meta = self._bucket_meta[index]
        self._bucket_meta[index] = None
        self._buckets[index] = self._materialize(self._buckets[index], meta)

    def advance(
        self, limit_slot: Optional[int] = None, allow_pure: bool = False
    ) -> Optional[Event]:
        """Position at the next live event and return it, or None.

        The event is *not* removed: callers that dispatch it must pair
        this with :meth:`consume` (``peek``-style callers simply don't).
        Cancelled events encountered on the way are dropped with the
        simulator's cancellation bookkeeping kept exact.

        ``limit_slot`` bounds cursor movement: the scan stops (returning
        None) rather than move past that slot. ``run(until=...)`` passes
        the slot containing ``until`` so a far-future overflow event
        cannot drag the cursor beyond the run window — if it did, every
        event scheduled afterwards (all with earlier times) would land
        in the open slot's bisect-insert path instead of an O(1) bucket
        append, silently degrading the wheel into a sorted list. Events
        at or before ``until`` always sit at or before its slot, so the
        bound never hides a due event.

        With ``allow_pure=True`` (the fast dispatch loop), opening a
        pure bucket returns the ``_PURE_SLOT`` sentinel instead of
        materializing it — the caller must either batch-drain the slot
        or call :meth:`advance` again (which resolves it). All other
        callers get pure slots resolved transparently.
        """
        sim = self.sim
        if self._open_pure:
            if allow_pure:
                return _PURE_SLOT
            self._resolve_open()
        while True:
            open_ = self._open
            pos = self._open_pos
            size = len(open_)
            while pos < size:
                event = open_[pos]
                if not event.cancelled:
                    self._open_pos = pos
                    return event
                event._in_queue = False
                sim._cancelled -= 1
                pos += 1
            if size:
                # Slot fully consumed: every entry was dispatched or
                # cancel-skipped, so dispatched pooled events can go
                # back to the arena (slots the batch dispatcher took
                # never reach here — it consumes tuples, not Events).
                arena = sim._arena
                if arena is not None:
                    recycled = [event for event in open_ if event.pooled]
                    if recycled:
                        arena.release_block(recycled)
                del open_[:]
            self._open_pos = 0
            # Open slot exhausted — move the cursor. When every bucket
            # is empty, jump straight to the overflow head's slot
            # instead of scanning potentially millions of empty slots.
            if self._bucket_entries:
                target = self._cursor + 1
            elif self._overflow:
                head_slot = int(self._overflow[0][0] * self._scale)
                target = max(self._cursor + 1, head_slot)
            else:
                return None
            if limit_slot is not None and target > limit_slot:
                return None
            self._cursor = target
            self.slots_scanned += 1
            self._cascade()
            index = self._cursor % self.num_slots
            bucket = self._buckets[index]
            if bucket:
                self._bucket_entries -= len(bucket)
                self._buckets[index] = []
                meta = self._bucket_meta[index]
                if meta is not None:
                    self._bucket_meta[index] = None
                    self._open = bucket
                    self._open_pos = 0
                    self._open_pure = True
                    self._open_meta = meta
                    if allow_pure:
                        return _PURE_SLOT
                    self._resolve_open()
                    continue
                bucket.sort(key=_EVENT_KEY)
                self._open = bucket

    def consume(self) -> None:
        """Remove the event the last :meth:`advance` returned."""
        self._open_pos += 1

    def peek_times(self, k: int) -> list[float]:
        """Times of the next up-to-``k`` pending events, ascending.

        :meth:`advance` positions the cursor on the first live event
        (resolving a pure open slot and skipping cancelled entries);
        the remainder of the open slot is already time-sorted. Forward
        buckets are scanned in slot order — pure buckets hold raw
        ``(time, action)`` tuples, materialized ones hold Events with
        possible cancellations — and because slots partition time
        monotonically the scan stops at the first slot boundary with k
        candidates collected. The overflow heap only matters if the
        in-horizon buckets run dry first: post-cascade, every overflow
        time is at or past the wheel horizon, hence after every bucket
        time.
        """
        first = self.advance()
        if first is None:
            return []
        out = [first.time]
        for event in self._open[self._open_pos + 1 :]:
            if len(out) >= k:
                return out[:k]
            if not event.cancelled:
                out.append(event.time)
        metas = self._bucket_meta
        for slot in range(self._cursor + 1, self._cursor + self.num_slots):
            if len(out) >= k:
                return out[:k]
            index = slot % self.num_slots
            bucket = self._buckets[index]
            if not bucket:
                continue
            if metas[index] is not None:
                times = [entry[0] for entry in bucket]
            else:
                times = [e.time for e in bucket if not e.cancelled]
            times.sort()
            out.extend(times)
        if len(out) < k and self._overflow:
            out.extend(
                heapq.nsmallest(
                    k - len(out),
                    (
                        entry[0]
                        for entry in self._overflow
                        if not entry[2].cancelled
                    ),
                )
            )
        return out[:k]

    def compact(self) -> None:
        """Drop cancelled entries everywhere (wheel analogue of the
        heap's :meth:`Simulator._compact`). Pure storage is skipped
        outright: lazy bulk tuples are unreachable, so none can be
        cancelled."""
        if not self._open_pure:
            live_open = []
            for event in self._open[self._open_pos :]:
                if event.cancelled:
                    event._in_queue = False
                else:
                    live_open.append(event)
            self._open = live_open
            self._open_pos = 0
        self._bucket_entries = 0
        metas = self._bucket_meta
        for index, bucket in enumerate(self._buckets):
            if not bucket:
                continue
            if metas[index] is not None:
                self._bucket_entries += len(bucket)
                continue
            live = []
            for event in bucket:
                if event.cancelled:
                    event._in_queue = False
                else:
                    live.append(event)
            self._buckets[index] = live
            self._bucket_entries += len(live)
        live_overflow = []
        for entry in self._overflow:
            if entry[2].cancelled:
                entry[2]._in_queue = False
            else:
                live_overflow.append(entry)
        heapq.heapify(live_overflow)
        self._overflow = live_overflow

    def stats(self) -> dict:
        total_inserts = self.wheel_inserts + self.overflow_inserts
        return {
            "granularity": self.granularity,
            "num_slots": self.num_slots,
            "slots_scanned": self.slots_scanned,
            "cascades": self.cascades,
            "wheel_inserts": self.wheel_inserts,
            "overflow_inserts": self.overflow_inserts,
            "wheel_insert_share": (
                self.wheel_inserts / total_inserts if total_inserts else 0.0
            ),
        }


class PhaseProfiler:
    """Wall-clock phase accounting for a simulator's ``run()`` windows.

    Attach with ``sim.profiler = PhaseProfiler()``; ``run()`` then takes
    a profiled loop that times every event action (*dispatch*) and
    attributes the rest of the loop — slot scans, bucket sorts,
    cascades, heap sifts, cancellation skips — to scheduler *advance*.
    The parallel worker layers two more phases on top of these
    (*sync_wait* for coordinator-pipe blocking and *idle* for the
    remainder) to reach a full breakdown of worker wall time; see
    :meth:`repro.netsim.parallel.sync.SyncStats.phase_breakdown`.

    Two phases live *outside* the ``run()`` loop and are accumulated at
    their call sites instead:

    * ``alloc_seconds`` — event construction/recycling wall time in
      ``schedule_at``/``schedule_bulk`` calls made *between* run
      windows (bulk workload builds, the parallel worker's import
      injection). Scheduling done from inside a dispatched action stays
      charged to *dispatch* — it is part of that event's work — so the
      phases never double-count.
    * ``accounting_seconds`` — metrics flush/snapshot wall time
      (registry collection, telemetry export), accumulated by the
      observability layer at snapshot boundaries.

    The unprofiled fast paths are untouched: with ``profiler`` left
    ``None`` the engine dispatches through the same inlined loops as
    before, so profiling is strictly opt-in.
    """

    __slots__ = (
        "dispatch_seconds",
        "advance_seconds",
        "alloc_seconds",
        "accounting_seconds",
        "events",
        "windows",
    )

    def __init__(self) -> None:
        self.dispatch_seconds = 0.0
        self.advance_seconds = 0.0
        self.alloc_seconds = 0.0
        self.accounting_seconds = 0.0
        self.events = 0
        self.windows = 0

    def add(self, dispatch: float, advance: float, events: int) -> None:
        self.dispatch_seconds += dispatch
        self.advance_seconds += advance
        self.events += events
        self.windows += 1

    def as_dict(self) -> dict:
        return {
            "dispatch_seconds": self.dispatch_seconds,
            "advance_seconds": self.advance_seconds,
            "alloc_seconds": self.alloc_seconds,
            "accounting_seconds": self.accounting_seconds,
            "events": self.events,
            "windows": self.windows,
        }


class Simulator:
    """A seeded discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator's private :class:`random.Random`. All
        stochastic substrate behaviour (link loss, jitter, workload
        generators that accept a simulator) draws from this generator,
        which makes whole-system runs reproducible (see the module
        docstring's seeding contract).
    rng:
        An explicit :class:`random.Random` to use instead of seeding a
        fresh one — the injection point for callers that manage their
        own derived streams (partition workers pass
        ``random.Random(derive_seed(seed, "worker", rank))``). Mutually
        exclusive with a non-default ``seed``.
    scheduler:
        ``"heap"`` (default) or ``"wheel"``. Both dispatch in the same
        deterministic ``(time, seq)`` order; the wheel trades the
        heap's O(log n) Python-comparison sifts for O(1) bucket
        inserts plus one C-keyed sort per slot, which wins once the
        pending set is large (see ``docs/performance.md``).
    wheel_granularity / wheel_slots:
        Wheel tuning (ignored for the heap): slot width in simulated
        seconds and slot count. The product is the wheel horizon;
        events beyond it sit in the overflow heap until they cascade.
    native:
        Enable the native-speed event core (arena-pooled events from
        :mod:`repro.netsim.arena` plus batch slot dispatch). Defaults
        to the process-wide ``REPRO_NATIVE`` setting; pass an explicit
        bool to override per simulator (equivalence tests run the same
        workload both ways).
    """

    def __init__(
        self,
        seed: int = 0,
        scheduler: str = "heap",
        wheel_granularity: float = 0.001,
        wheel_slots: int = 8192,
        rng: Optional[random.Random] = None,
        native: Optional[bool] = None,
    ) -> None:
        if scheduler not in ("heap", "wheel"):
            raise SimulationError(
                f"unknown scheduler {scheduler!r} (expected 'heap' or 'wheel')"
            )
        if rng is not None and seed != 0:
            raise SimulationError("pass either seed or rng, not both")
        self._native = NATIVE if native is None else bool(native)
        self._arena = ARENA if self._native else None
        #: Batch slot dispatch tallies (wheel scheduler, native mode).
        self.batched_events = 0
        self.batched_slots = 0
        self._now = 0.0
        self._seq = 0
        self._queue: list[Event] = []
        self._live = 0
        self._cancelled = 0
        self._running = False
        self.rng = rng if rng is not None else random.Random(seed)
        self.events_processed = 0
        self.scheduler = scheduler
        self._wheel: Optional[TimerWheel] = (
            TimerWheel(self, granularity=wheel_granularity, num_slots=wheel_slots)
            if scheduler == "wheel"
            else None
        )
        #: Observability hooks called as ``fn(sim, event, wall_seconds)``
        #: after each event executes (see :mod:`repro.obs.hooks`). The
        #: dispatch loop takes the zero-overhead path when empty.
        self._dispatch_listeners: list[Callable[["Simulator", Event, float], None]] = []
        #: Opt-in phase accounting; assign a :class:`PhaseProfiler` to
        #: route ``run()`` through the profiled loop.
        self.profiler: Optional[PhaseProfiler] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def reseed(self, seed: int) -> None:
        """Replace the RNG with a freshly seeded one. Used by partition
        workers to switch to their derived per-worker stream after the
        (seed-consuming) topology build, so build-time draws stay
        identical across workers while run-time draws are independent."""
        self.rng = random.Random(seed)

    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        name: str = "",
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        arena = self._arena
        if arena is not None and arena.blocks:
            event = arena.acquire()
            event.gen += 1
            event.time = self._now + delay
            event.seq = self._seq
            event.action = action
            event.name = name
            event.cancelled = False
            event.owner = self
            event._in_queue = True
            event.pooled = False
        else:
            event = Event(self._now + delay, self._seq, action, name, False, self, True)
        wheel = self._wheel
        if wheel is None:
            heapq.heappush(self._queue, event)
        else:
            # Inlined TimerWheel.insert() bucket-append common case —
            # one less call per event on the bulk-scheduling path.
            slot = int(event.time * wheel._scale)
            cursor = wheel._cursor
            if cursor < slot < cursor + wheel.num_slots:
                index = slot % wheel.num_slots
                if wheel._bucket_meta[index] is not None:
                    wheel._materialize_bucket(index)
                wheel._buckets[index].append(event)
                wheel._bucket_entries += 1
                wheel.wheel_inserts += 1
            else:
                wheel.insert(event)
        self._live += 1
        return event

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        name: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute simulated time ``time``.

        Implemented directly rather than via :meth:`schedule` — bulk
        workload generators (the bench harness schedules 10^6 events up
        front) sit on this path, so it skips the extra call frame and
        delay round-trip.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past (time={time}, now={self._now})"
            )
        profiler = self.profiler
        started = (
            perf_counter() if profiler is not None and not self._running else 0.0
        )
        self._seq += 1
        arena = self._arena
        if arena is not None and arena.blocks:
            event = arena.acquire()
            event.gen += 1
            event.time = time
            event.seq = self._seq
            event.action = action
            event.name = name
            event.cancelled = False
            event.owner = self
            event._in_queue = True
            event.pooled = False
        else:
            event = Event(time, self._seq, action, name, False, self, True)
        wheel = self._wheel
        if wheel is None:
            heapq.heappush(self._queue, event)
        else:
            # Inlined TimerWheel.insert() bucket-append common case —
            # see schedule().
            slot = int(time * wheel._scale)
            cursor = wheel._cursor
            if cursor < slot < cursor + wheel.num_slots:
                index = slot % wheel.num_slots
                if wheel._bucket_meta[index] is not None:
                    wheel._materialize_bucket(index)
                wheel._buckets[index].append(event)
                wheel._bucket_entries += 1
                wheel.wheel_inserts += 1
            else:
                wheel.insert(event)
        self._live += 1
        if started:
            profiler.alloc_seconds += perf_counter() - started
        return event

    def schedule_bulk(
        self,
        items: list[tuple[float, Callable[[], None]]],
        name: str = "",
    ) -> int:
        """Schedule many ``(time, action)`` pairs in one call.

        The workload-generator fast path: one call amortises the
        per-event frame, sequencing, and validation costs of
        :meth:`schedule_at` across the whole batch. Dispatch order —
        including ties, which keep input order — is exactly that of a
        sequential loop of ``schedule_at(time, action)`` calls over
        ``items``. (Sequence numbers may be assigned per wheel bucket
        rather than globally in input order, but within every bucket
        they ascend in input order and equal times always share a
        bucket, so the observable ``(time, seq)`` dispatch order is
        identical on both schedulers.)

        On a native-mode simulator, in-horizon wheel entries are not
        materialized at all: each pure bucket holds references to the
        caller's ``(time, action)`` tuples, and a side tally built
        during this single input-order scan lets the batch dispatcher
        consume the whole slot in O(distinct actions) without a single
        Event object ever existing (see ``_batch_slot``; slots it
        declines are materialized from the arena's free list on
        demand). Heap-scheduler and out-of-horizon entries come from
        the arena free list (*pooled* — the engine recycles them after
        dispatch, which is safe because this method returns a count, so
        no caller can hold a reference).

        Returns the number of events scheduled.
        """
        n = len(items)
        if n == 0:
            return 0
        profiler = self.profiler
        started = (
            perf_counter() if profiler is not None and not self._running else 0.0
        )
        now = self._now
        # Atomic validation: one C-level scan up front, so a past-time
        # item rejects the whole batch with nothing scheduled.
        if min(items, key=_ITEM_TIME)[0] < now:
            raise SimulationError(
                f"cannot schedule in the past "
                f"(time={min(items, key=_ITEM_TIME)[0]}, now={now})"
            )
        seq = self._seq
        arena = self._arena
        pooled = arena is not None
        reused = 0
        wheel = self._wheel
        if wheel is None:
            # Consume one free-list block at a time as a local list: the
            # hot loop then pays a single truthiness test per event
            # instead of re-indexing the arena's block stack.
            if pooled:
                blocks = arena.blocks
                pool = blocks.pop() if blocks else None
            else:
                blocks = None
                pool = None
            queue = self._queue
            push = heapq.heappush
            for time, action in items:
                seq += 1
                if pool:
                    event = pool.pop()
                    reused += 1
                    event.gen += 1
                    event.time = time
                    event.seq = seq
                    event.action = action
                    event.name = name
                    event.cancelled = False
                    event.owner = self
                    event._in_queue = True
                    event.pooled = True
                    if not pool:
                        pool = blocks.pop() if blocks else None
                else:
                    event = Event(time, seq, action, name, False, self, True, 0, pooled)
                push(queue, event)
            if pool:
                blocks.append(pool)
            if reused:
                arena.total -= reused
                arena.acquired += reused
        else:
            buckets = wheel._buckets
            metas = wheel._bucket_meta
            num_slots = wheel.num_slots
            scale = wheel._scale
            cursor = wheel._cursor
            limit = cursor + num_slots
            overflow = 0
            if pooled:
                # Native fast path: one input-order scan (the items are
                # iterated in allocation order — perfect locality) does
                # ALL the per-item work. In-horizon items land in pure
                # buckets as references to the caller's own tuples (no
                # allocation at all) while the per-bucket action tally
                # is folded on the fly; dispatch then never revisits
                # them. base_seq stays None until the post-scan
                # assignment, which doubles as the this-call marker.
                touched: list[int] = []
                fb_seq = seq  # fallback events take seqs (seq, seq+nf]
                for item in items:
                    time = item[0]
                    slot = int(time * scale)
                    if cursor < slot < limit:
                        index = slot % num_slots
                        meta = metas[index]
                        if meta is not None:
                            if meta[1] is None:
                                # Pure bucket this call opened: append
                                # the caller's tuple itself, fold tally.
                                buckets[index].append(item)
                                tally = meta[2]
                                try:
                                    entry = tally[item[1]]
                                except KeyError:
                                    tally[item[1]] = [1, time]
                                else:
                                    entry[0] += 1
                                    if time > entry[1]:
                                        entry[1] = time
                            else:
                                # Stale pure bucket (earlier bulk call,
                                # seqs already fixed): join materialized.
                                wheel._materialize_bucket(index)
                                fb_seq += 1
                                buckets[index].append(
                                    self._bulk_event(time, fb_seq, item[1], name)
                                )
                        else:
                            bucket = buckets[index]
                            if bucket:
                                # Bucket already holds Events — join it
                                # as one (representations never mix).
                                fb_seq += 1
                                bucket.append(
                                    self._bulk_event(time, fb_seq, item[1], name)
                                )
                            else:
                                metas[index] = [name, None, {item[1]: [1, time]}]
                                touched.append(index)
                                bucket.append(item)
                    else:
                        fb_seq += 1
                        wheel.insert(self._bulk_event(time, fb_seq, item[1], name))
                        overflow += 1
                # Reserve seq ranges for the pure buckets: consecutive
                # from the first free seq after the fallbacks, one run
                # per bucket in touch order. Ranges never interleave
                # with the fallback seqs, within-bucket order is input
                # order, and ties never straddle buckets (equal times
                # share a slot) — so (time, seq) dispatch order matches
                # a sequential schedule_at loop exactly.
                base = fb_seq + 1
                for index in touched:
                    metas[index][1] = base
                    base += len(buckets[index])
                seq += n
            else:
                # Escape hatch (REPRO_NATIVE=0): classic materialized
                # events; purity is never set, so batch dispatch and the
                # arena stay out of the picture entirely.
                for time, action in items:
                    seq += 1
                    event = Event(time, seq, action, name, False, self, True)
                    slot = int(time * scale)
                    if cursor < slot < limit:
                        index = slot % num_slots
                        buckets[index].append(event)
                    else:
                        wheel.insert(event)
                        overflow += 1
            appended = n - overflow
            wheel._bucket_entries += appended
            wheel.wheel_inserts += appended
        self._seq = seq
        self._live += n
        if started:
            profiler.alloc_seconds += perf_counter() - started
        return n

    def _bulk_event(self, time: float, seq: int, action, name: str) -> Event:
        """Materialize one bulk item as a (pooled if possible) Event —
        the rare schedule_bulk fallbacks: out-of-horizon inserts and
        appends into a bucket that already holds Events."""
        arena = self._arena
        event = arena.acquire() if arena is not None else None
        if event is not None:
            event.gen += 1
            event.time = time
            event.seq = seq
            event.action = action
            event.name = name
            event.cancelled = False
            event.owner = self
            event._in_queue = True
            event.pooled = True
            return event
        return Event(
            time, seq, action, name, False, self, True, 0, arena is not None
        )

    def peek_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        if self._wheel is not None:
            event = self._wheel.advance()
            return None if event is None else event.time
        while self._queue and self._queue[0].cancelled:
            dead = heapq.heappop(self._queue)
            dead._in_queue = False
            self._cancelled -= 1
        if not self._queue:
            return None
        return self._queue[0].time

    def peek_times(self, k: int) -> list[float]:
        """Times of the next up-to-``k`` pending events, ascending,
        without dispatching anything. The sharded runner's grant
        ladders are built from these. O(k log k) on the heap (a
        candidate-frontier walk over the heap array); on the wheel one
        :meth:`TimerWheel.advance` for the exact head, then an
        in-order scan of the open slot and forward buckets — slots
        partition time monotonically, so the scan stops as soon as k
        candidates are in hand at a slot boundary."""
        if k <= 0:
            return []
        if k == 1:
            head = self.peek_time()
            return [] if head is None else [head]
        if self._wheel is not None:
            return self._wheel.peek_times(k)
        head = self.peek_time()  # clears cancelled events off the top
        if head is None:
            return []
        queue = self._queue
        out: list[float] = []
        frontier = [(queue[0].time, 0)]
        while frontier and len(out) < k:
            when, at = heapq.heappop(frontier)
            if not queue[at].cancelled:
                out.append(when)
            for child in (2 * at + 1, 2 * at + 2):
                if child < len(queue):
                    heapq.heappush(frontier, (queue[child].time, child))
        return out

    def _note_cancelled(self) -> None:
        """Bookkeeping for an in-queue cancellation: keep ``pending()``
        O(1) and compact the queue once cancelled events outnumber live
        ones (otherwise long-lived runs that churn timers leak)."""
        self._live -= 1
        self._cancelled += 1
        if self._wheel is not None:
            if (
                len(self._wheel) >= _COMPACT_MIN_QUEUE
                and self._cancelled * 2 > len(self._wheel)
            ):
                self._wheel.compact()
                self._cancelled = 0
            return
        if (
            len(self._queue) >= _COMPACT_MIN_QUEUE
            and self._cancelled * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        for event in self._queue:
            if event.cancelled:
                event._in_queue = False
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0

    def _dispatch(self, event: Event) -> None:
        """Fire one live, already-popped event."""
        self._live -= 1
        self._now = event.time
        self.events_processed += 1
        if self._dispatch_listeners:
            started = perf_counter()
            event.action()
            wall = perf_counter() - started
            for listener in self._dispatch_listeners:
                listener(self, event, wall)
        else:
            event.action()

    def step(self) -> bool:
        """Run the single next event. Returns False if none remain."""
        if self._wheel is not None:
            event = self._wheel.advance()
            if event is None:
                return False
            self._wheel.consume()
            event._in_queue = False
            self._dispatch(event)
            return True
        while self._queue:
            event = heapq.heappop(self._queue)
            event._in_queue = False
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._dispatch(event)
            return True
        return False

    def add_dispatch_listener(
        self, listener: Callable[["Simulator", Event, float], None]
    ) -> None:
        """Register ``listener(sim, event, wall_seconds)`` to run after
        every dispatched event (metrics/profiling hook)."""
        self._dispatch_listeners.append(listener)

    def remove_dispatch_listener(
        self, listener: Callable[["Simulator", Event, float], None]
    ) -> None:
        self._dispatch_listeners.remove(listener)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        inclusive: bool = True,
    ) -> int:
        """Run events until the queue drains, ``until`` passes, or
        ``max_events`` have fired. Returns the number of events run.

        ``until`` is inclusive by default: an event scheduled exactly at
        ``until`` runs, and the clock is advanced to ``until`` afterwards
        even if no event lands exactly there.

        ``inclusive=False`` makes ``until`` an *exclusive* horizon:
        events strictly before it run, events at exactly ``until`` stay
        queued, and the clock still advances to ``until``. This is the
        conservative-synchronization hook: a partition worker granted
        LBTS horizon ``H`` may safely dispatch everything below ``H``
        (cross-partition traffic arrives at ``>= H`` by the lookahead
        argument) but must not touch ``H`` itself, where an in-flight
        remote packet could still land.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            if self.profiler is not None:
                ran = self._run_profiled(until, max_events, inclusive)
            elif self._wheel is not None:
                ran = self._run_wheel(until, max_events, inclusive)
            else:
                ran = self._run_heap(until, max_events, inclusive)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return ran

    def _run_heap(
        self, until: Optional[float], max_events: Optional[int], inclusive: bool = True
    ) -> int:
        ran = 0
        # One heap touch per iteration: discard cancelled events from
        # the head, then pop-and-dispatch in the same pass (the seed
        # peeked via peek_time() and then re-examined the heap top
        # inside step() — two inspections per event).
        while True:
            if max_events is not None and ran >= max_events:
                break
            queue = self._queue  # _compact() may rebind the list
            while queue and queue[0].cancelled:
                dead = heapq.heappop(queue)
                dead._in_queue = False
                self._cancelled -= 1
            if not queue:
                break
            if until is not None and (
                queue[0].time > until or (not inclusive and queue[0].time >= until)
            ):
                break
            event = heapq.heappop(queue)
            event._in_queue = False
            self._dispatch(event)
            ran += 1
            if event.pooled:
                arena = self._arena
                if arena is not None:
                    arena.release(event)
        return ran

    def _batch_slot(
        self,
        until: Optional[float],
        max_events: Optional[int],
        inclusive: bool,
    ) -> int:
        """Drain a freshly-opened *pure* wheel slot in one grouped call.

        Called by ``_run_wheel`` immediately after ``advance()`` opens a
        pure slot (lazy bulk tuples: unreachable, hence uncancellable).
        The slot carries the per-action tally ``{action: [count,
        t_last]}`` that ``schedule_bulk`` folded while filling the
        bucket, so this method never touches the entries themselves —
        its cost is O(distinct actions), not O(events). Actions resolve
        to their batch groups (``action.batch_group`` — see
        :class:`repro.core.blocks.BlockChannelGroup`), and each group is
        asked whether it can absorb the whole batch under the worst-case
        all-drops-first ordering. Admission is all-or-nothing and the
        scan is side-effect-free; on refusal the slot stays pure and the
        caller's next ``advance()`` materializes it for per-event
        fallback dispatch.

        On commit the slot is consumed wholesale: the clock jumps to the
        slot's maximum entry time, each group applies its aggregate
        delta once, and the tuples are simply dropped — no Event object
        ever existed for them. Aggregation is order-independent (pure
        arithmetic over commuting ±1 ops), so the slot needs no sort
        either. Equivalence with per-event dispatch is proven in
        ``tests/properties/test_scheduler_equivalence.py``.

        Returns the number of events consumed (0 = fall back).
        """
        if max_events is not None or self._dispatch_listeners:
            return 0
        wheel = self._wheel
        tally = wheel._open_meta[2]
        # Fold per-action tallies into per-group aggregates:
        # [delta_sum, drop_sum, n_ops, t_max].
        groups: dict = {}
        for action, (count, t_last) in tally.items():
            group = getattr(action, "batch_group", None)
            if group is None:
                return 0
            delta = action.batch_delta
            entry = groups.get(group)
            if entry is None:
                groups[group] = entry = [0, 0, 0, 0.0]
            entry[0] += delta * count
            if delta < 0:
                entry[1] -= delta * count
            entry[2] += count
            if t_last > entry[3]:
                entry[3] = t_last
        last_time = max(entry[3] for entry in groups.values())
        if until is not None and (
            last_time > until or (not inclusive and last_time >= until)
        ):
            return 0
        for group, entry in groups.items():
            if not group.can_batch(entry[1]):
                return 0
        # Commit: nothing above mutated state, so from here on every
        # group is known to accept.
        n = len(wheel._open)
        self._now = last_time
        self._live -= n
        self.events_processed += n
        self.batched_events += n
        self.batched_slots += 1
        for group, entry in groups.items():
            group.run_batch(entry[0], entry[2], entry[3])
        wheel._open = []
        wheel._open_pos = 0
        wheel._open_pure = False
        wheel._open_meta = None
        return n

    def _run_wheel(
        self, until: Optional[float], max_events: Optional[int], inclusive: bool = True
    ) -> int:
        # Fully inlined dispatch loop. The common case — a live event
        # already positioned in the open slot — runs with no method
        # calls besides the action itself; advance() only fires on slot
        # boundaries, cancellations, and cascades. The heap loop keeps
        # its shape: it is the equivalence oracle, not the fast path.
        ran = 0
        wheel = self._wheel
        advance = wheel.advance
        limit_slot = None if until is None else int(until * wheel._scale)
        while True:
            if max_events is not None and ran >= max_events:
                break
            open_ = wheel._open
            pos = wheel._open_pos
            if pos < len(open_):
                event = open_[pos]
                if event.cancelled:
                    event = advance(limit_slot, True)
                    if event is None:
                        break
                    if event is _PURE_SLOT:
                        batched = self._batch_slot(until, max_events, inclusive)
                        if batched:
                            ran += batched
                            continue
                        # Refused: materialize + sort, then re-peek.
                        event = advance(limit_slot)
                        if event is None:
                            break
            else:
                event = advance(limit_slot, True)
                if event is None:
                    break
                if event is _PURE_SLOT:
                    # advance() just opened a pure slot: try to drain it
                    # in one grouped dispatch; on refusal the follow-up
                    # advance() materializes it for per-event dispatch.
                    batched = self._batch_slot(until, max_events, inclusive)
                    if batched:
                        ran += batched
                        continue
                    event = advance(limit_slot)
                    if event is None:
                        break
            if until is not None and (
                event.time > until or (not inclusive and event.time >= until)
            ):
                break
            wheel._open_pos += 1  # consume(): advance left the cursor here
            event._in_queue = False
            # _dispatch(), inlined:
            self._live -= 1
            self._now = event.time
            self.events_processed += 1
            if self._dispatch_listeners:
                started = perf_counter()
                event.action()
                wall = perf_counter() - started
                for listener in self._dispatch_listeners:
                    listener(self, event, wall)
            else:
                event.action()
            ran += 1
        return ran

    def _run_profiled(
        self, until: Optional[float], max_events: Optional[int], inclusive: bool = True
    ) -> int:
        # Scheduler-agnostic dispatch loop with phase timing: every
        # action is timed individually (dispatch wall) and the rest of
        # the loop — advance/cascade/sort for the wheel, sift/skip for
        # the heap — is charged to scheduler advance. Dispatch order is
        # identical to the fast loops (same (time, seq) discipline);
        # only wall-clock observation is added.
        profiler = self.profiler
        listeners = self._dispatch_listeners
        wheel = self._wheel
        limit_slot = (
            None if until is None or wheel is None else int(until * wheel._scale)
        )
        ran = 0
        dispatch_wall = 0.0
        loop_started = perf_counter()
        while True:
            if max_events is not None and ran >= max_events:
                break
            if wheel is not None:
                event = wheel.advance(limit_slot)
                if event is None:
                    break
            else:
                queue = self._queue  # _compact() may rebind the list
                while queue and queue[0].cancelled:
                    dead = heapq.heappop(queue)
                    dead._in_queue = False
                    self._cancelled -= 1
                if not queue:
                    break
                event = queue[0]
            if until is not None and (
                event.time > until or (not inclusive and event.time >= until)
            ):
                break
            if wheel is not None:
                wheel.consume()
            else:
                heapq.heappop(self._queue)
            event._in_queue = False
            self._live -= 1
            self._now = event.time
            self.events_processed += 1
            started = perf_counter()
            event.action()
            wall = perf_counter() - started
            dispatch_wall += wall
            for listener in listeners:
                listener(self, event, wall)
            ran += 1
        total = perf_counter() - loop_started
        profiler.add(
            dispatch=dispatch_wall,
            advance=max(0.0, total - dispatch_wall),
            events=ran,
        )
        return ran

    def pending(self) -> int:
        """Number of live (non-cancelled) events in the queue. O(1):
        maintained incrementally by schedule/cancel/step."""
        return self._live

    def scheduler_stats(self) -> dict:
        """Counters describing scheduler behaviour (for perf reports
        and the obs gauges). Shape depends on the active scheduler."""
        if self._wheel is None:
            stats = {
                "scheduler": "heap",
                "inserts": self._seq,
                "pending": self._live,
            }
        else:
            stats = self._wheel.stats()
            stats["scheduler"] = "wheel"
            stats["pending"] = self._live
        stats["native"] = self._native
        stats["batched_events"] = self.batched_events
        stats["batched_slots"] = self.batched_slots
        if self._arena is not None:
            stats["arena"] = self._arena.stats()
        return stats


class PeriodicTask:
    """A repeating task bound to a simulator.

    Used for protocol timers (IGMP/ECMP periodic queries, keepalives).
    The task reschedules itself after each firing until stopped. The
    first firing happens ``interval`` seconds after :meth:`start`
    (optionally jittered to avoid global synchronization, per RFC-style
    timer advice).
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        action: Callable[[], None],
        name: str = "",
        jitter: float = 0.0,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        self._sim = sim
        self._interval = interval
        self._action = action
        self._name = name
        self._jitter = jitter
        self._event: Optional[Event] = None
        self._stopped = True

    @property
    def running(self) -> bool:
        return not self._stopped

    def start(self) -> None:
        if not self._stopped:
            return
        self._stopped = False
        self._schedule_next()

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _schedule_next(self) -> None:
        delay = self._interval
        if self._jitter:
            delay += self._sim.rng.uniform(-self._jitter, self._jitter)
            delay = max(delay, 1e-9)
        self._event = self._sim.schedule(delay, self._fire, name=self._name)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._action()
        if not self._stopped:
            self._schedule_next()


def call_repeatedly(
    sim: Simulator,
    interval: float,
    action: Callable[[], None],
    name: str = "",
    jitter: float = 0.0,
) -> PeriodicTask:
    """Convenience: create and start a :class:`PeriodicTask`."""
    task = PeriodicTask(sim, interval, action, name=name, jitter=jitter)
    task.start()
    return task
