"""Tracing and measurement helpers.

The benchmark harness reports message counts, control bandwidth, and
delivery latency; these helpers centralize that bookkeeping so the
protocol code stays clean.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Optional


@dataclass
class TraceRecord:
    """One observed packet event."""

    time: float
    node: str
    direction: str  # "tx" | "rx" | "drop"
    proto: str
    size: int
    detail: str = ""


class PacketTrace:
    """An append-only log of packet events with simple query helpers."""

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []

    def record(
        self,
        time: float,
        node: str,
        direction: str,
        proto: str,
        size: int,
        detail: str = "",
    ) -> None:
        self.records.append(TraceRecord(time, node, direction, proto, size, detail))

    def __len__(self) -> int:
        return len(self.records)

    def filter(
        self,
        node: Optional[str] = None,
        direction: Optional[str] = None,
        proto: Optional[str] = None,
    ) -> list[TraceRecord]:
        out = []
        for rec in self.records:
            if node is not None and rec.node != node:
                continue
            if direction is not None and rec.direction != direction:
                continue
            if proto is not None and rec.proto != proto:
                continue
            out.append(rec)
        return out

    def total_bytes(self, **kwargs) -> int:
        return sum(rec.size for rec in self.filter(**kwargs))

    def count(self, **kwargs) -> int:
        return len(self.filter(**kwargs))


class Counter:
    """A labelled bag of integer counters (``collections.Counter``-like
    but explicit about what it is used for in reports)."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = defaultdict(int)

    def incr(self, key: str, amount: int = 1) -> None:
        self._counts[key] += amount

    def get(self, key: str) -> int:
        return self._counts.get(key, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    def __getitem__(self, key: str) -> int:
        return self.get(key)

    def keys(self) -> Iterable[str]:
        return self._counts.keys()


@dataclass
class LatencySample:
    """Delivery latency of one packet from send to receive."""

    sent_at: float
    received_at: float

    @property
    def latency(self) -> float:
        return self.received_at - self.sent_at


class LatencyStats:
    """Accumulates latency samples and reports summary statistics."""

    def __init__(self) -> None:
        self.samples: list[LatencySample] = []

    def add(self, sent_at: float, received_at: float) -> None:
        self.samples.append(LatencySample(sent_at, received_at))

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def latencies(self) -> list[float]:
        return [sample.latency for sample in self.samples]

    def mean(self) -> float:
        lat = self.latencies
        return sum(lat) / len(lat) if lat else 0.0

    def max(self) -> float:
        lat = self.latencies
        return max(lat) if lat else 0.0

    def min(self) -> float:
        lat = self.latencies
        return min(lat) if lat else 0.0
