"""Tracing and measurement helpers.

The benchmark harness reports message counts, control bandwidth, and
delivery latency; these helpers centralize that bookkeeping so the
protocol code stays clean.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Optional


@dataclass
class TraceRecord:
    """One observed packet event."""

    time: float
    node: str
    direction: str  # "tx" | "rx" | "drop"
    proto: str
    size: int
    detail: str = ""


class PacketTrace:
    """An append-only log of packet events with simple query helpers.

    Records are additionally indexed by node, by proto, and by
    ``(node, proto)`` at append time, so the benchmarks' repeated
    per-node / per-protocol queries cost O(matches) instead of
    rescanning the full record list every call.
    """

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []
        self._by_node: dict[str, list[TraceRecord]] = defaultdict(list)
        self._by_proto: dict[str, list[TraceRecord]] = defaultdict(list)
        self._by_node_proto: dict[tuple[str, str], list[TraceRecord]] = defaultdict(list)

    def record(
        self,
        time: float,
        node: str,
        direction: str,
        proto: str,
        size: int,
        detail: str = "",
    ) -> None:
        rec = TraceRecord(time, node, direction, proto, size, detail)
        self.records.append(rec)
        self._by_node[node].append(rec)
        self._by_proto[proto].append(rec)
        self._by_node_proto[(node, proto)].append(rec)

    def __len__(self) -> int:
        return len(self.records)

    def filter(
        self,
        node: Optional[str] = None,
        direction: Optional[str] = None,
        proto: Optional[str] = None,
    ) -> list[TraceRecord]:
        if node is not None and proto is not None:
            base = self._by_node_proto.get((node, proto), [])
        elif node is not None:
            base = self._by_node.get(node, [])
        elif proto is not None:
            base = self._by_proto.get(proto, [])
        else:
            base = self.records
        if direction is None:
            return list(base)
        return [rec for rec in base if rec.direction == direction]

    def total_bytes(self, **kwargs) -> int:
        return sum(rec.size for rec in self.filter(**kwargs))

    def count(self, **kwargs) -> int:
        return len(self.filter(**kwargs))


class Counter:
    """A labelled bag of integer counters (``collections.Counter``-like
    but explicit about what it is used for in reports)."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = defaultdict(int)

    def incr(self, key: str, amount: int = 1) -> None:
        self._counts[key] += amount

    def get(self, key: str) -> int:
        return self._counts.get(key, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    def __getitem__(self, key: str) -> int:
        return self.get(key)

    def keys(self) -> Iterable[str]:
        return self._counts.keys()


@dataclass
class LatencySample:
    """Delivery latency of one packet from send to receive."""

    sent_at: float
    received_at: float

    @property
    def latency(self) -> float:
        return self.received_at - self.sent_at


class LatencyStats:
    """Accumulates latency samples and reports summary statistics."""

    def __init__(self) -> None:
        self.samples: list[LatencySample] = []

    def add(self, sent_at: float, received_at: float) -> None:
        self.samples.append(LatencySample(sent_at, received_at))

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def latencies(self) -> list[float]:
        return [sample.latency for sample in self.samples]

    def mean(self) -> float:
        lat = self.latencies
        return sum(lat) / len(lat) if lat else 0.0

    def max(self) -> float:
        lat = self.latencies
        return max(lat) if lat else 0.0

    def min(self) -> float:
        lat = self.latencies
        return min(lat) if lat else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile of the latencies (``p`` in [0, 100]);
        0.0 when empty."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        lat = sorted(self.latencies)
        if not lat:
            return 0.0
        rank = max(1, math.ceil(p / 100.0 * len(lat)))
        return lat[rank - 1]

    def as_dict(self) -> dict[str, float]:
        """Summary statistics in one dict (benchmark report rows)."""
        return {
            "count": float(len(self.samples)),
            "mean": self.mean(),
            "min": self.min(),
            "max": self.max(),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }
