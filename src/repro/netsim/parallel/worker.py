"""One partition's event loop: ghosts, proxies, and windowed runs.

A :class:`PartitionWorker` builds the *full* scenario (identical
topology, addresses, interface indices, channel suffixes everywhere),
starts agents only for its owned nodes, installs capture hooks on cut
links, and then serves horizon *grants* from the coordinator: each
grant carries a ladder of horizons plus pending imports, the worker
drains one window (eager mode) or as many export-capped windows as
the grant ceiling allows (demand mode), and replies with one
coalesced report frame — exports, window/dispatch counters, its
next-k event times, and optionally a telemetry snapshot, all in a
single message. It is process-agnostic: the mp runner hosts one per
child process via :func:`worker_main` speaking frames over a
:mod:`~repro.netsim.parallel.transport` endpoint; the inline runner
routes the *same encoded frames* through :func:`serve_frame` in a
single process, so frame counts and codec coverage are identical.

Determinism: imports are injected sorted by ``(arrival_time,
src_rank, export_seq)`` before each window, and injected delivery
events carry the same ``deliver:<proto>`` names the link layer uses,
so per-event-name obs counters match the single-process oracle
exactly.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from math import inf
from time import perf_counter
from typing import Optional

from repro.netsim.engine import PhaseProfiler, derive_seed
from repro.netsim.parallel import codec
from repro.netsim.parallel.codec import decode_packet, encode_packet
from repro.netsim.parallel.partition import PartitionPlan
from repro.netsim.parallel.scenario import ScenarioSpec, build, schedule_ops
from repro.netsim.parallel.sync import SyncStats, transitive_lookahead
from repro.netsim.parallel.transport import connect_endpoint

#: How many upcoming event times a worker reports per grant — the
#: coordinator's raw material for the next grant's horizon ladder.
LADDER_K = 4

#: Metric-family prefixes excluded from equivalence snapshots: the
#: wall-clock families (event timing, SPF timing — plus the per-process
#: lazy Dijkstra tree fills, which legitimately duplicate across
#: workers) measure the machine, not the protocol. Everything else —
#: including the ``parallel_*`` sync counters — stays in the snapshot;
#: :func:`repro.netsim.parallel.runner.assert_equivalent` splits the
#: sharded-only families off and checks fleet conservation on them
#: instead of oracle equality (the oracle has no sync traffic at all).
EQUIVALENCE_EXCLUDE = ("sim_event_wall_seconds", "spf_")

#: Families that exist only in sharded runs (no oracle counterpart):
#: the equivalence checker verifies internal conservation — fleet
#: proxy exports must equal fleet proxy imports — rather than equality.
SHARDED_ONLY_PREFIXES = ("parallel_",)


@dataclass(frozen=True)
class TelemetryConfig:
    """Worker-side telemetry knobs (implies observability is on).

    ``snapshot_every`` ships a cumulative registry/span snapshot to the
    coordinator every N sync rounds (0 = only the final snapshot with
    the results); periodic snapshots cap histogram samples at
    ``max_samples`` per child to bound pipe traffic. ``flight_dir``
    arms the flight recorder: the worker keeps a ``flight_capacity``
    ring of recent events and dumps ``flight-<rank>.jsonl`` there on
    error or signal.
    """

    profile: bool = True
    snapshot_every: int = 0
    max_samples: Optional[int] = 512
    flight_dir: Optional[str] = None
    flight_capacity: int = 2048

    def flight_path(self, rank: int) -> Optional[str]:
        if self.flight_dir is None:
            return None
        return os.path.join(self.flight_dir, f"flight-{rank}.jsonl")


class PartitionWorker:
    """One rank of a sharded run."""

    def __init__(
        self,
        spec: ScenarioSpec,
        plan: PartitionPlan,
        rank: int,
        scheduler: str = "heap",
        with_obs: bool = False,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        self.spec = spec
        self.plan = plan
        self.rank = rank
        self.telemetry = telemetry
        self.stats = SyncStats(rank=rank)
        obs = None
        self.sync_metrics = None
        self.flight = None
        if with_obs or telemetry is not None:
            from repro.obs.hooks import Observability, SyncMetrics

            obs = Observability(shard=rank)
            self.sync_metrics = SyncMetrics(obs.registry, rank)
        self.obs = obs
        self.net, self.channels, self.blocks = build(spec, scheduler=scheduler, obs=obs)
        self.sim = self.net.sim
        #: Smallest cut cycle back to this partition (the transitive
        #: closure's diagonal): the worker's own export at time t can
        #: echo back no earlier than ``t + self_delay``, which is what
        #: lets it run multiple windows inside one demand grant — each
        #: window is capped at ``next_event + self_delay``, so no
        #: window can overrun an echo of an export it just made.
        closure = transitive_lookahead(plan.lookahead, plan.n)
        self.self_delay = closure.get((rank, rank), inf)
        self._windows_since_snapshot = 0
        if telemetry is not None:
            from repro.obs.convergence import ConvergenceMonitor
            from repro.obs.flightrecorder import FlightRecorder

            obs.convergence = ConvergenceMonitor(self.sim)
            if telemetry.profile:
                self.sim.profiler = PhaseProfiler()
            if telemetry.flight_dir is not None:
                self.flight = FlightRecorder(
                    capacity=telemetry.flight_capacity, shard=rank
                )
                self.flight.attach(self.sim)
        owned = plan.parts[rank]
        #: Owned names in topology insertion order, so agents start in
        #: the same relative order as the oracle's full start.
        self.owned = [n for n in self.net.topo.nodes if n in owned]
        self._owned_set = set(self.owned)
        self.exports: list[tuple] = []
        self._export_seq = 0
        self._install_proxies()
        self.net.start(self.owned)
        # Workload scheduling is part of the worker's accounted wall
        # time (its event-construction cost lands in the profiler's
        # *alloc* phase), so phase fractions stay a partition of the
        # total.
        started = perf_counter() if telemetry is not None else 0.0
        self.ops_scheduled = schedule_ops(
            spec, self.net, self.channels, self.blocks, owned=self._owned_set
        )
        if telemetry is not None:
            self.stats.wall_total += perf_counter() - started
        # Post-build reseed: construction consumed the shared seed
        # identically everywhere; from here on each worker draws from
        # its own derived stream (loss draws on owned links only).
        self.sim.reseed(derive_seed(spec.seed, "worker", rank))

    # -- proxies -----------------------------------------------------------

    def _install_proxies(self) -> None:
        owner = self.plan.owner
        for link in self.net.topo.links:
            if owner[link.node_a.name] != owner[link.node_b.name]:
                link.capture = self._capture

    def _capture(self, link, sender, packet, arrival: float) -> None:
        if self.plan.owner[sender.name] != self.rank:
            # A ghost transmitted — only possible via a scenario bug
            # (ops scheduled on a non-owned node); drop loudly.
            raise RuntimeError(
                f"ghost node {sender.name} transmitted in partition {self.rank}"
            )
        receiver = link.other_end(sender)
        data = encode_packet(packet)
        self.stats.proxy_packets_out += 1
        self.stats.proxy_bytes_out += len(data)
        if self.sync_metrics is not None:
            self.sync_metrics.proxy_export(len(data))
        self.exports.append(
            (
                arrival,
                self.rank,
                self._export_seq,
                self.plan.owner[receiver.name],
                receiver.name,
                link.interface_of(receiver).index,
                data,
            )
        )
        self._export_seq += 1

    def _inject(self, imports: list[tuple]) -> None:
        """Schedule imported packets as delivery events, in exact
        ``(arrival, src_rank, export_seq)`` order."""
        topo = self.net.topo
        for arrival, _src_rank, _seq, _dst_rank, node_name, iface_index, data in sorted(
            imports, key=lambda rec: (rec[0], rec[1], rec[2])
        ):
            packet = decode_packet(data)
            self.stats.proxy_packets_in += 1
            self.stats.proxy_bytes_in += len(data)
            if self.sync_metrics is not None:
                self.sync_metrics.proxy_import(len(data))
            node = topo.node(node_name)
            self.sim.schedule_at(
                arrival,
                lambda n=node, p=packet, i=iface_index: n.receive(p, i),
                name=f"deliver:{packet.proto}",
            )

    # -- sync grants -------------------------------------------------------

    def next_time(self) -> float:
        when = self.sim.peek_time()
        return when if when is not None else inf

    def next_times(self, k: int = LADDER_K) -> list[float]:
        """Next-k pending event times for the report frame (``[inf]``
        when the queue is dry — a report always carries at least the
        effective next-event announcement)."""
        times = self.sim.peek_times(k)
        return times if times else [inf]

    def run_grant(
        self,
        ladder: list[float],
        imports: list[tuple],
        final: bool,
        eager: bool,
    ) -> tuple[list[float], int, int, list[tuple], bool, bool, Optional[dict]]:
        """Serve one coordinator grant: inject, drain windows, report.

        ``ladder[-1]`` is the authoritative grant ceiling. Eager mode
        runs exactly one exclusive window to it (the PR-7 lockstep
        baseline; ``final`` runs the inclusive window to the scenario
        end instead). Demand mode drains windows ``[s, min(ceiling,
        s + self_delay))`` until the ceiling is exhausted — or stops at
        the first window that exported, because past that window's end
        an echo of its own export could land. A ``final`` demand grant
        (ceiling past the scenario end) finishes with the inclusive
        window once every remaining window end clears the duration;
        if an export interrupts it first, the report says *not*
        finalized and the coordinator re-grants after the export has
        been heard by its destination.

        Returns ``(next_times, windows, dispatched, exports,
        finalized, stalled, telemetry)``.
        """
        started = perf_counter() if self.telemetry is not None else 0.0
        self._inject(imports)
        sim = self.sim
        before = sim.events_processed
        duration = self.spec.duration
        diag = self.self_delay
        ceiling = ladder[-1] if ladder else inf
        windows = 0
        finalized = False
        if eager:
            if final:
                sim.run(until=duration)
                finalized = True
            else:
                sim.run(until=ceiling, inclusive=False)
            windows = 1
        elif final:
            finalized = True
            while True:
                when = sim.peek_time()
                if when is None or when + diag > duration:
                    # Any export from here echoes past the scenario
                    # end: the inclusive final window is safe.
                    sim.run(until=duration)
                    windows += 1
                    break
                sim.run(until=when + diag, inclusive=False)
                windows += 1
                if self.exports:
                    finalized = False
                    break
        else:
            while True:
                when = sim.peek_time()
                if when is None or when >= ceiling:
                    break
                end = min(ceiling, when + diag)
                sim.run(until=end, inclusive=False)
                windows += 1
                if self.exports:
                    break
        dispatched = sim.events_processed - before
        self.stats.sync_rounds += 1
        self.stats.windows += windows
        exports = self.exports
        self.exports = []
        if not exports and dispatched == 0:
            # A CMB null message carries nothing but a clock bound. A
            # report that dispatched local work (or shipped packets) is
            # payload, not tax, even when no packet crossed the cut.
            self.stats.null_messages += 1
            if self.sync_metrics is not None:
                self.sync_metrics.null_message()
        next_times = self.next_times()
        stalled = dispatched == 0 and next_times[0] <= duration
        if stalled:
            self.stats.lbts_stalls += 1
            if self.sync_metrics is not None:
                self.sync_metrics.lbts_stall()
        if self.sync_metrics is not None:
            self.sync_metrics.sync_round(windows)
        telemetry = None
        if self.telemetry is not None:
            self._windows_since_snapshot += windows
            every = self.telemetry.snapshot_every
            if every and self._windows_since_snapshot >= every:
                self._windows_since_snapshot = 0
                telemetry = self.telemetry_snapshot()
            # Accumulated after the snapshot so the *accounting* phase
            # (registry dump) stays inside the worker's total.
            self.stats.wall_total += perf_counter() - started
        return (
            next_times, windows, dispatched, exports, finalized, stalled,
            telemetry,
        )

    def ready_frame(self) -> bytes:
        self.stats.frames_sent += 1
        return codec.encode_ready(self.next_time(), self.ops_scheduled)

    # -- results -----------------------------------------------------------

    def _sync_phase_stats(self) -> None:
        """Copy the engine profiler's phase totals into the sync stats
        (idempotent — the profiler accumulates, we overwrite)."""
        profiler = self.sim.profiler
        if profiler is not None:
            stats = self.stats
            stats.wall_dispatch = profiler.dispatch_seconds
            stats.wall_cascade = profiler.advance_seconds
            stats.wall_alloc = profiler.alloc_seconds
            stats.wall_accounting = profiler.accounting_seconds
            stats.events_dispatched = profiler.events
            # Timer overhead (and the final snapshot's dump, which lands
            # after the last round window) can push the measured phases
            # past the accumulated total; keep total >= sum-of-phases so
            # breakdown fractions always partition 1.0.
            measured = (
                stats.wall_dispatch + stats.wall_cascade + stats.wall_alloc
                + stats.wall_accounting + stats.wall_sync_wait
            )
            if stats.wall_total < measured:
                stats.wall_total = measured

    def telemetry_snapshot(self, final: bool = False) -> Optional[dict]:
        """The cumulative per-worker telemetry record shipped over the
        coordinator pipe: a registry dump, every span so far (the
        aggregator is latest-wins per span id), and the convergence
        clock. The final snapshot publishes phase gauges and ships
        untruncated histogram samples."""
        if self.telemetry is None:
            return None
        max_samples = None if final else self.telemetry.max_samples
        convergence = self.obs.convergence
        if final and self.sync_metrics is not None:
            # Publish phase/frame gauges *before* the dump below so
            # their values ride the final registry snapshot.
            self._sync_phase_stats()
            self.sync_metrics.set_phases(self.stats)
        # The registry dump runs every collector (vectorized counter
        # banks flushing into metric families included) — that wall
        # time is the *accounting* phase.
        started = perf_counter()
        registry = self.obs.registry.dump(max_samples=max_samples)
        profiler = self.sim.profiler
        if profiler is not None:
            profiler.accounting_seconds += perf_counter() - started
        self._sync_phase_stats()
        return {
            "shard": self.rank,
            "final": final,
            "registry": registry,
            "spans": [span.to_record() for span in self.obs.tracer.spans],
            "quiesced_at": convergence.last_change if convergence else None,
            "state_changes": convergence.changes if convergence else 0,
        }

    def summary(self) -> dict:
        return extract_summary(
            self.net,
            self.channels,
            self.blocks,
            owned=self._owned_set,
            obs=self.obs,
        )


def extract_summary(net, channels, blocks, owned=None, obs=None) -> dict:
    """The picklable settled-state record equivalence compares.

    ``owned=None`` extracts everything (the single-process oracle);
    a partition worker passes its node set. Per-worker summaries merge
    disjointly: every node, subscription, and block belongs to exactly
    one partition, and obs counters add.
    """

    def mine(name: str) -> bool:
        return owned is None or name in owned

    channel_tables: dict[str, dict] = {}
    subscriptions: dict[str, dict] = {}
    for name, agent in net.ecmp_agents.items():
        if not mine(name):
            continue
        tables = {}
        for channel, state in agent.channels.items():
            tables[str(channel)] = {
                "upstream": state.upstream,
                "advertised": state.advertised,
                "total": state.total(),
                "downstream": {
                    neighbor: (record.count, record.validated)
                    for neighbor, record in state.downstream.items()
                },
            }
        if tables:
            channel_tables[name] = tables
        subs = {}
        for channel, handle in agent.subscriptions.items():
            subs[str(channel)] = (handle.status, handle.packets_received)
        if subs:
            subscriptions[name] = subs
    block_state: dict[str, dict] = {}
    for block in blocks:
        if not mine(block.edge_router):
            continue
        block_state[f"{block.edge_router}/{block.name}"] = {
            "deliveries": block.deliveries,
            "counts": {str(ch): block.count(ch) for ch in channels if block.count(ch)},
        }
    obs_counters = None
    if obs is not None:
        obs_counters = obs.registry.counter_snapshot(exclude=EQUIVALENCE_EXCLUDE)
    return {
        "channel_tables": channel_tables,
        "subscriptions": subscriptions,
        "blocks": block_state,
        "events": net.sim.events_processed,
        "final_time": net.sim.now,
        "obs_counters": obs_counters,
    }


def serve_frame(worker: PartitionWorker, frame: bytes) -> tuple[Optional[bytes], bool]:
    """Handle one coordinator frame; returns ``(reply, exit)``.

    The single dispatch point both execution modes share: mp children
    call it from :func:`worker_main`, the inline runner calls it
    directly with the same encoded bytes — which is what makes frame
    counts and codec coverage identical across transports. A grant's
    reply coalesces everything the coordinator needs (exports, window
    and dispatch counters, next-k times, optional telemetry snapshot)
    into one report frame.
    """
    kind, body = codec.decode_frame(frame)
    if kind == codec.FRAME_GRANT:
        worker.stats.frames_received += 1
        ladder, imports, final, eager = body
        next_times, windows, dispatched, exports, finalized, stalled, snap = (
            worker.run_grant(ladder, imports, final, eager)
        )
        blob = None
        if snap is not None:
            blob = pickle.dumps(snap, protocol=pickle.HIGHEST_PROTOCOL)
        worker.stats.frames_sent += 1
        return (
            codec.encode_report(
                next_times, windows, dispatched, exports, finalized,
                stalled, telemetry=blob,
            ),
            False,
        )
    if kind == codec.FRAME_RESULT_REQ:
        return (
            codec.encode_result((
                worker.summary(),
                worker.stats,
                worker.telemetry_snapshot(final=True),
            )),
            False,
        )
    if kind == codec.FRAME_EXIT:
        return None, True
    raise RuntimeError(  # pragma: no cover - protocol bug guard
        f"unexpected frame kind {kind:#x}"
    )


def worker_main(
    endpoint_descriptor, spec, plan, rank, scheduler, with_obs, telemetry=None
) -> None:
    """Child-process entry: build the partition, then serve frames.

    With telemetry on, time blocked waiting for the next frame is
    charged to the ``sync_wait`` phase (that is where LBTS/grant
    waiting manifests in a child process — including the long quiet
    stretches demand-driven sync leaves a shard parked in), and an
    armed flight recorder dumps its ring on any error or signal before
    the failure propagates.
    """
    endpoint = connect_endpoint(endpoint_descriptor)
    worker = None
    try:
        worker = PartitionWorker(
            spec, plan, rank, scheduler=scheduler, with_obs=with_obs,
            telemetry=telemetry,
        )
        if worker.flight is not None:
            worker.flight.install_signal_handlers(telemetry.flight_path(rank))
        endpoint.send(worker.ready_frame())
        timed = telemetry is not None
        while True:
            if timed:
                waited_from = perf_counter()
                frame = endpoint.recv()
                waited = perf_counter() - waited_from
                worker.stats.wall_sync_wait += waited
                worker.stats.wall_total += waited
            else:
                frame = endpoint.recv()
            reply, done = serve_frame(worker, frame)
            if done:
                break
            endpoint.send(reply)
    except Exception as exc:  # surface the failure to the coordinator
        if worker is not None and worker.flight is not None:
            try:
                worker.flight.dump(
                    telemetry.flight_path(rank),
                    reason=f"error:{type(exc).__name__}: {exc}",
                )
            except Exception:  # pragma: no cover - disk trouble
                pass
        try:
            endpoint.send(codec.encode_error(f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - transport already down
            pass
        raise
    finally:
        endpoint.close()
