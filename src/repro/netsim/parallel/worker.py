"""One partition's event loop: ghosts, proxies, and windowed runs.

A :class:`PartitionWorker` builds the *full* scenario (identical
topology, addresses, interface indices, channel suffixes everywhere),
starts agents only for its owned nodes, installs capture hooks on cut
links, and then alternates between lookahead-bounded simulator windows
and export/import exchanges with the coordinator. It is process-
agnostic: the mp runner hosts one per child process via
:func:`worker_main`; the inline runner drives the same objects in a
single process (1-CPU test environments, debugging).

Determinism: imports are injected sorted by ``(arrival_time,
src_rank, export_seq)`` before each window, and injected delivery
events carry the same ``deliver:<proto>`` names the link layer uses,
so per-event-name obs counters match the single-process oracle
exactly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from math import inf
from time import perf_counter
from typing import Optional

from repro.netsim.engine import PhaseProfiler, derive_seed
from repro.netsim.parallel.codec import decode_packet, encode_packet
from repro.netsim.parallel.partition import PartitionPlan
from repro.netsim.parallel.scenario import ScenarioSpec, build, schedule_ops
from repro.netsim.parallel.sync import SyncStats

#: Coordinator commands over the pipe.
CMD_ROUND = "round"
CMD_RESULT = "result"
CMD_EXIT = "exit"

#: Horizon sentinel: run the final inclusive window to the scenario end.
FINAL = None

#: Metric-family prefixes excluded from equivalence snapshots: the
#: wall-clock families (event timing, SPF timing — plus the per-process
#: lazy Dijkstra tree fills, which legitimately duplicate across
#: workers) measure the machine, not the protocol. Everything else —
#: including the ``parallel_*`` sync counters — stays in the snapshot;
#: :func:`repro.netsim.parallel.runner.assert_equivalent` splits the
#: sharded-only families off and checks fleet conservation on them
#: instead of oracle equality (the oracle has no sync traffic at all).
EQUIVALENCE_EXCLUDE = ("sim_event_wall_seconds", "spf_")

#: Families that exist only in sharded runs (no oracle counterpart):
#: the equivalence checker verifies internal conservation — fleet
#: proxy exports must equal fleet proxy imports — rather than equality.
SHARDED_ONLY_PREFIXES = ("parallel_",)


@dataclass(frozen=True)
class TelemetryConfig:
    """Worker-side telemetry knobs (implies observability is on).

    ``snapshot_every`` ships a cumulative registry/span snapshot to the
    coordinator every N sync rounds (0 = only the final snapshot with
    the results); periodic snapshots cap histogram samples at
    ``max_samples`` per child to bound pipe traffic. ``flight_dir``
    arms the flight recorder: the worker keeps a ``flight_capacity``
    ring of recent events and dumps ``flight-<rank>.jsonl`` there on
    error or signal.
    """

    profile: bool = True
    snapshot_every: int = 0
    max_samples: Optional[int] = 512
    flight_dir: Optional[str] = None
    flight_capacity: int = 2048

    def flight_path(self, rank: int) -> Optional[str]:
        if self.flight_dir is None:
            return None
        return os.path.join(self.flight_dir, f"flight-{rank}.jsonl")


class PartitionWorker:
    """One rank of a sharded run."""

    def __init__(
        self,
        spec: ScenarioSpec,
        plan: PartitionPlan,
        rank: int,
        scheduler: str = "heap",
        with_obs: bool = False,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        self.spec = spec
        self.plan = plan
        self.rank = rank
        self.telemetry = telemetry
        self.stats = SyncStats(rank=rank)
        obs = None
        self.sync_metrics = None
        self.flight = None
        if with_obs or telemetry is not None:
            from repro.obs.hooks import Observability, SyncMetrics

            obs = Observability(shard=rank)
            self.sync_metrics = SyncMetrics(obs.registry, rank)
        self.obs = obs
        self.net, self.channels, self.blocks = build(spec, scheduler=scheduler, obs=obs)
        self.sim = self.net.sim
        self._rounds_since_snapshot = 0
        if telemetry is not None:
            from repro.obs.convergence import ConvergenceMonitor
            from repro.obs.flightrecorder import FlightRecorder

            obs.convergence = ConvergenceMonitor(self.sim)
            if telemetry.profile:
                self.sim.profiler = PhaseProfiler()
            if telemetry.flight_dir is not None:
                self.flight = FlightRecorder(
                    capacity=telemetry.flight_capacity, shard=rank
                )
                self.flight.attach(self.sim)
        owned = plan.parts[rank]
        #: Owned names in topology insertion order, so agents start in
        #: the same relative order as the oracle's full start.
        self.owned = [n for n in self.net.topo.nodes if n in owned]
        self._owned_set = set(self.owned)
        self.exports: list[tuple] = []
        self._export_seq = 0
        self._install_proxies()
        self.net.start(self.owned)
        # Workload scheduling is part of the worker's accounted wall
        # time (its event-construction cost lands in the profiler's
        # *alloc* phase), so phase fractions stay a partition of the
        # total.
        started = perf_counter() if telemetry is not None else 0.0
        self.ops_scheduled = schedule_ops(
            spec, self.net, self.channels, self.blocks, owned=self._owned_set
        )
        if telemetry is not None:
            self.stats.wall_total += perf_counter() - started
        # Post-build reseed: construction consumed the shared seed
        # identically everywhere; from here on each worker draws from
        # its own derived stream (loss draws on owned links only).
        self.sim.reseed(derive_seed(spec.seed, "worker", rank))

    # -- proxies -----------------------------------------------------------

    def _install_proxies(self) -> None:
        owner = self.plan.owner
        for link in self.net.topo.links:
            if owner[link.node_a.name] != owner[link.node_b.name]:
                link.capture = self._capture

    def _capture(self, link, sender, packet, arrival: float) -> None:
        if self.plan.owner[sender.name] != self.rank:
            # A ghost transmitted — only possible via a scenario bug
            # (ops scheduled on a non-owned node); drop loudly.
            raise RuntimeError(
                f"ghost node {sender.name} transmitted in partition {self.rank}"
            )
        receiver = link.other_end(sender)
        data = encode_packet(packet)
        self.stats.proxy_packets_out += 1
        self.stats.proxy_bytes_out += len(data)
        if self.sync_metrics is not None:
            self.sync_metrics.proxy_export(len(data))
        self.exports.append(
            (
                arrival,
                self.rank,
                self._export_seq,
                self.plan.owner[receiver.name],
                receiver.name,
                link.interface_of(receiver).index,
                data,
            )
        )
        self._export_seq += 1

    def _inject(self, imports: list[tuple]) -> None:
        """Schedule imported packets as delivery events, in exact
        ``(arrival, src_rank, export_seq)`` order."""
        topo = self.net.topo
        for arrival, _src_rank, _seq, _dst_rank, node_name, iface_index, data in sorted(
            imports, key=lambda rec: (rec[0], rec[1], rec[2])
        ):
            packet = decode_packet(data)
            self.stats.proxy_packets_in += 1
            self.stats.proxy_bytes_in += len(data)
            if self.sync_metrics is not None:
                self.sync_metrics.proxy_import(len(data))
            node = topo.node(node_name)
            self.sim.schedule_at(
                arrival,
                lambda n=node, p=packet, i=iface_index: n.receive(p, i),
                name=f"deliver:{packet.proto}",
            )

    # -- sync rounds -------------------------------------------------------

    def next_time(self) -> float:
        when = self.sim.peek_time()
        return when if when is not None else inf

    def run_round(
        self, horizon: Optional[float], imports: list[tuple]
    ) -> tuple[float, list[tuple], int, Optional[dict]]:
        """One coordinator round: inject, run the window, report.

        ``horizon=None`` (:data:`FINAL`) runs the inclusive window to
        the scenario end. Returns ``(next_time, exports, dispatched,
        telemetry)`` where ``telemetry`` is a cumulative snapshot dict
        every ``TelemetryConfig.snapshot_every`` rounds and None
        otherwise.
        """
        started = perf_counter() if self.telemetry is not None else 0.0
        self._inject(imports)
        before = self.sim.events_processed
        if horizon is FINAL:
            self.sim.run(until=self.spec.duration)
        else:
            self.sim.run(until=horizon, inclusive=False)
        dispatched = self.sim.events_processed - before
        self.stats.sync_rounds += 1
        exports = self.exports
        self.exports = []
        if not exports:
            self.stats.null_messages += 1
            if self.sync_metrics is not None:
                self.sync_metrics.null_message()
        nxt = self.next_time()
        if dispatched == 0 and nxt <= self.spec.duration:
            self.stats.lbts_stalls += 1
            if self.sync_metrics is not None:
                self.sync_metrics.lbts_stall()
        if self.sync_metrics is not None:
            self.sync_metrics.sync_round()
        telemetry = None
        if self.telemetry is not None:
            self._rounds_since_snapshot += 1
            every = self.telemetry.snapshot_every
            if every and self._rounds_since_snapshot >= every:
                self._rounds_since_snapshot = 0
                telemetry = self.telemetry_snapshot()
            # Accumulated after the snapshot so the *accounting* phase
            # (registry dump) stays inside the worker's total.
            self.stats.wall_total += perf_counter() - started
        return nxt, exports, dispatched, telemetry

    # -- results -----------------------------------------------------------

    def _sync_phase_stats(self) -> None:
        """Copy the engine profiler's phase totals into the sync stats
        (idempotent — the profiler accumulates, we overwrite)."""
        profiler = self.sim.profiler
        if profiler is not None:
            stats = self.stats
            stats.wall_dispatch = profiler.dispatch_seconds
            stats.wall_cascade = profiler.advance_seconds
            stats.wall_alloc = profiler.alloc_seconds
            stats.wall_accounting = profiler.accounting_seconds
            stats.events_dispatched = profiler.events
            # Timer overhead (and the final snapshot's dump, which lands
            # after the last round window) can push the measured phases
            # past the accumulated total; keep total >= sum-of-phases so
            # breakdown fractions always partition 1.0.
            measured = (
                stats.wall_dispatch + stats.wall_cascade + stats.wall_alloc
                + stats.wall_accounting + stats.wall_sync_wait
            )
            if stats.wall_total < measured:
                stats.wall_total = measured

    def telemetry_snapshot(self, final: bool = False) -> Optional[dict]:
        """The cumulative per-worker telemetry record shipped over the
        coordinator pipe: a registry dump, every span so far (the
        aggregator is latest-wins per span id), and the convergence
        clock. The final snapshot publishes phase gauges and ships
        untruncated histogram samples."""
        if self.telemetry is None:
            return None
        max_samples = None if final else self.telemetry.max_samples
        convergence = self.obs.convergence
        # The registry dump runs every collector (vectorized counter
        # banks flushing into metric families included) — that wall
        # time is the *accounting* phase.
        started = perf_counter()
        registry = self.obs.registry.dump(max_samples=max_samples)
        profiler = self.sim.profiler
        if profiler is not None:
            profiler.accounting_seconds += perf_counter() - started
        self._sync_phase_stats()
        if final and self.sync_metrics is not None:
            self.sync_metrics.set_phases(self.stats)
        return {
            "shard": self.rank,
            "final": final,
            "registry": registry,
            "spans": [span.to_record() for span in self.obs.tracer.spans],
            "quiesced_at": convergence.last_change if convergence else None,
            "state_changes": convergence.changes if convergence else 0,
        }

    def summary(self) -> dict:
        return extract_summary(
            self.net,
            self.channels,
            self.blocks,
            owned=self._owned_set,
            obs=self.obs,
        )


def extract_summary(net, channels, blocks, owned=None, obs=None) -> dict:
    """The picklable settled-state record equivalence compares.

    ``owned=None`` extracts everything (the single-process oracle);
    a partition worker passes its node set. Per-worker summaries merge
    disjointly: every node, subscription, and block belongs to exactly
    one partition, and obs counters add.
    """

    def mine(name: str) -> bool:
        return owned is None or name in owned

    channel_tables: dict[str, dict] = {}
    subscriptions: dict[str, dict] = {}
    for name, agent in net.ecmp_agents.items():
        if not mine(name):
            continue
        tables = {}
        for channel, state in agent.channels.items():
            tables[str(channel)] = {
                "upstream": state.upstream,
                "advertised": state.advertised,
                "total": state.total(),
                "downstream": {
                    neighbor: (record.count, record.validated)
                    for neighbor, record in state.downstream.items()
                },
            }
        if tables:
            channel_tables[name] = tables
        subs = {}
        for channel, handle in agent.subscriptions.items():
            subs[str(channel)] = (handle.status, handle.packets_received)
        if subs:
            subscriptions[name] = subs
    block_state: dict[str, dict] = {}
    for block in blocks:
        if not mine(block.edge_router):
            continue
        block_state[f"{block.edge_router}/{block.name}"] = {
            "deliveries": block.deliveries,
            "counts": {str(ch): block.count(ch) for ch in channels if block.count(ch)},
        }
    obs_counters = None
    if obs is not None:
        obs_counters = obs.registry.counter_snapshot(exclude=EQUIVALENCE_EXCLUDE)
    return {
        "channel_tables": channel_tables,
        "subscriptions": subscriptions,
        "blocks": block_state,
        "events": net.sim.events_processed,
        "final_time": net.sim.now,
        "obs_counters": obs_counters,
    }


def worker_main(conn, spec, plan, rank, scheduler, with_obs, telemetry=None) -> None:
    """Child-process entry: build the partition, then serve rounds.

    With telemetry on, time blocked in ``conn.recv()`` is charged to
    the ``sync_wait`` phase (that is where LBTS/barrier waiting
    manifests in a child process), and an armed flight recorder dumps
    its ring on any error or signal before the failure propagates.
    """
    worker = None
    try:
        worker = PartitionWorker(
            spec, plan, rank, scheduler=scheduler, with_obs=with_obs,
            telemetry=telemetry,
        )
        if worker.flight is not None:
            worker.flight.install_signal_handlers(telemetry.flight_path(rank))
        conn.send(("ready", worker.next_time(), worker.ops_scheduled))
        timed = telemetry is not None
        while True:
            if timed:
                waited_from = perf_counter()
                command = conn.recv()
                waited = perf_counter() - waited_from
                worker.stats.wall_sync_wait += waited
                worker.stats.wall_total += waited
            else:
                command = conn.recv()
            kind = command[0]
            if kind == CMD_ROUND:
                _, horizon, imports = command
                conn.send(worker.run_round(horizon, imports))
            elif kind == CMD_RESULT:
                conn.send((
                    worker.summary(),
                    worker.stats,
                    worker.telemetry_snapshot(final=True),
                ))
            elif kind == CMD_EXIT:
                break
            else:  # pragma: no cover - protocol bug guard
                raise RuntimeError(f"unknown command {kind!r}")
    except Exception as exc:  # surface the failure to the coordinator
        if worker is not None and worker.flight is not None:
            try:
                worker.flight.dump(
                    telemetry.flight_path(rank),
                    reason=f"error:{type(exc).__name__}: {exc}",
                )
            except Exception:  # pragma: no cover - disk trouble
                pass
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - pipe already closed
            pass
        raise
    finally:
        conn.close()
