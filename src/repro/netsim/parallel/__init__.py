"""Parallel sharded simulation: per-partition event loops with
conservative lookahead.

The distribution tree rooted at ``(S, E)`` decomposes into subtrees
whose only coupling is hop-by-hop control traffic on the links that
cross the cut, so the simulator shards naturally: a partitioner splits
the topology into per-subtree node sets (source in rank 0, cut links
minimized), every worker process builds the *full* topology — so
addressing, interface indices, and unicast routing are identical
everywhere — but starts protocol agents only for the nodes it owns,
and cut links are replaced by proxy endpoints that serialize packets
(the real ECMP wire codec, ``MSG_BATCH`` frames included, for control
traffic) and re-inject them in the owning partition with exact
``(time, seq)`` ordering.

Synchronization is conservative: each cut link's propagation delay is
its lookahead, and no worker dispatches past its granted horizon —
derived from the other partitions' next effective event times plus the
transitive cut-link closure. The default ``sync_mode="demand"``
protocol grants each worker a multi-window horizon *ladder* and skips
quiet shards entirely (null messages are demand-driven, not
per-round); ``sync_mode="eager"`` keeps the one-window-per-round
lockstep baseline. Frames move over a pluggable transport
(:mod:`~repro.netsim.parallel.transport`): a zero-pickle
shared-memory ring by default, ``multiprocessing`` pipes via
``transport="pipe"`` or ``REPRO_TRANSPORT=pipe``. The sharded run is
deterministic for a given seed — across sync modes and transports —
and, once settled, produces ``ChannelState`` tables, delivery counts,
and obs counters identical to the single-process oracle (pinned by
``tests/properties/test_partition_equivalence.py``).

See ``docs/performance.md`` ("Sharding the event loop") for the model
of how cut delay bounds the achievable speedup.
"""

from repro.netsim.parallel.partition import PartitionPlan, plan_partitions
from repro.netsim.parallel.runner import (
    ParallelResult,
    ParallelRunner,
    assert_equivalent,
    run_single,
)
from repro.netsim.parallel.scenario import OPGENS, ScenarioSpec
from repro.netsim.parallel.sync import (
    PHASES,
    RoundTrace,
    SyncStats,
    build_ladder,
    compute_horizons,
    grant_ceilings,
    merge_phase_stats,
    message_stats,
    transitive_lookahead,
)
from repro.netsim.parallel.transport import (
    PipeTransport,
    ShmTransport,
    TransportError,
    transport_choice,
)
from repro.netsim.parallel.worker import TelemetryConfig

__all__ = [
    "OPGENS",
    "PHASES",
    "ParallelResult",
    "ParallelRunner",
    "PartitionPlan",
    "PipeTransport",
    "RoundTrace",
    "ScenarioSpec",
    "ShmTransport",
    "SyncStats",
    "TelemetryConfig",
    "TransportError",
    "assert_equivalent",
    "build_ladder",
    "compute_horizons",
    "grant_ceilings",
    "merge_phase_stats",
    "message_stats",
    "plan_partitions",
    "run_single",
    "transport_choice",
    "transitive_lookahead",
]
