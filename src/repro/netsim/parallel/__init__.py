"""Parallel sharded simulation: per-partition event loops with
conservative lookahead.

The distribution tree rooted at ``(S, E)`` decomposes into subtrees
whose only coupling is hop-by-hop control traffic on the links that
cross the cut, so the simulator shards naturally: a partitioner splits
the topology into per-subtree node sets (source in rank 0, cut links
minimized), every worker process builds the *full* topology — so
addressing, interface indices, and unicast routing are identical
everywhere — but starts protocol agents only for the nodes it owns,
and cut links are replaced by proxy endpoints that serialize packets
(the real ECMP wire codec, ``MSG_BATCH`` frames included, for control
traffic) and re-inject them in the owning partition with exact
``(time, seq)`` ordering.

Synchronization is conservative: each cut link's propagation delay is
its lookahead, workers exchange null-message/LBTS announcements over
``multiprocessing`` pipes each round, and no worker dispatches past
its horizon — the minimum over predecessor partitions of (their next
effective event time + the smallest cut-link delay toward us). The
sharded run is deterministic for a given seed and, once settled,
produces ``ChannelState`` tables, delivery counts, and obs counters
identical to the single-process oracle (pinned by
``tests/properties/test_partition_equivalence.py``).

See ``docs/performance.md`` ("Sharding the event loop") for the model
of how cut delay bounds the achievable speedup.
"""

from repro.netsim.parallel.partition import PartitionPlan, plan_partitions
from repro.netsim.parallel.runner import (
    ParallelResult,
    ParallelRunner,
    assert_equivalent,
    run_single,
)
from repro.netsim.parallel.scenario import OPGENS, ScenarioSpec
from repro.netsim.parallel.sync import (
    PHASES,
    SyncStats,
    compute_horizons,
    merge_phase_stats,
    transitive_lookahead,
)
from repro.netsim.parallel.worker import TelemetryConfig

__all__ = [
    "OPGENS",
    "PHASES",
    "ParallelResult",
    "ParallelRunner",
    "PartitionPlan",
    "ScenarioSpec",
    "SyncStats",
    "TelemetryConfig",
    "assert_equivalent",
    "compute_horizons",
    "merge_phase_stats",
    "plan_partitions",
    "run_single",
    "transitive_lookahead",
]
