"""The coordinator: spawn workers, issue horizon grants, merge results.

:class:`ParallelRunner` executes one :class:`ScenarioSpec` across N
partitions. Two sync modes share the same frame protocol:

* ``sync_mode="demand"`` (default) — each scheduling round the
  coordinator computes per-worker grant *ceilings* from the transitive
  lookahead closure (self-echo term excluded — the worker enforces
  that bound locally), grants only the workers that have dispatchable
  work below their ceiling (quiet shards are not granted and send no
  heartbeats), and each granted worker drains as many export-capped
  windows as the ceiling allows before replying with one coalesced
  report. Null messages become demand-driven: a report with no
  exports only happens when a worker exhausts its entire ceiling.
* ``sync_mode="eager"`` — the PR-7 lockstep baseline: every
  non-finalized worker is granted a single-window horizon every round.
  Kept bit-compatible as the measured baseline for the sync-tax
  reduction metrics (`null_ratio_reduction`, `sync_message_reduction`
  in the bench schema).

Execution modes: ``mode="mp"`` runs one child process per partition
over a :mod:`~repro.netsim.parallel.transport` — the shared-memory
ring transport by default (zero pickle on the hot loop), pipes via
``transport="pipe"`` or ``REPRO_TRANSPORT=pipe``. ``mode="inline"``
drives the same :class:`PartitionWorker` objects in-process but routes
commands through the *same encoded frames*, so frame counts, codec
coverage, and results are identical to ``mp``.

:func:`run_single` runs the unsharded oracle and
:func:`assert_equivalent` pins the contract: merged per-partition
summaries equal the oracle's settled ``ChannelState`` tables,
subscription/delivery state, event counts, and obs counters.
"""

from __future__ import annotations

import functools
import math
import os
from collections import deque
from dataclasses import dataclass, field
from math import inf
from time import perf_counter
from typing import Optional

from repro.errors import SimulationError
from repro.netsim.parallel import codec
from repro.netsim.parallel.partition import PartitionPlan, plan_partitions
from repro.netsim.parallel.scenario import ScenarioSpec, build, schedule_ops
from repro.netsim.parallel.sync import (
    RoundTrace,
    SyncStats,
    build_ladder,
    compute_horizons,
    effective_next_times,
    grant_ceilings,
    merge_phase_stats,
    merge_sync_stats,
    message_stats,
    transitive_lookahead,
)
from repro.netsim.parallel.transport import (
    PipeTransport,
    ShmTransport,
    transport_choice,
)
from repro.netsim.parallel.worker import (
    SHARDED_ONLY_PREFIXES,
    PartitionWorker,
    TelemetryConfig,
    extract_summary,
    serve_frame,
    worker_main,
)


@dataclass
class ParallelResult:
    """Outcome of one sharded run."""

    plan: PartitionPlan
    summaries: list[dict]
    sync: list[SyncStats]
    rounds: int
    #: Wall seconds of the round loop (build/spawn excluded — setup is
    #: a fixed cost the speedup measurement should not charge to the
    #: sync protocol).
    wall_seconds: float
    #: Wall seconds of partition build + worker spawn + first report
    #: (the fixed cost excluded from ``wall_seconds``). When this
    #: dwarfs the round loop the run is measuring process startup, not
    #: the protocol — see ``warnings``.
    setup_seconds: float = 0.0
    #: CPU cores the host exposes (``os.cpu_count()``); sharded runs
    #: cannot beat single-process when the workers are time-slicing one
    #: core.
    cores_available: int = 1
    #: Diagnostic flags: ``cores_limited`` (fewer cores than workers —
    #: any measured speedup < 1 reflects the host, not the protocol)
    #: and ``setup_dominated`` (setup took longer than the round loop —
    #: scale the workload up before trusting the speedup).
    warnings: list = field(default_factory=list)
    merged: dict = field(default_factory=dict)
    #: Which transport moved the frames (``shm``/``pipe``/``inline``)
    #: and which sync protocol ran (``demand``/``eager``).
    transport: str = ""
    sync_mode: str = "demand"
    #: Per-scheduling-round :class:`RoundTrace` records (granted
    #: ladders, frame counts) for post-mortems and ``repro.obs diff``.
    round_traces: list = field(default_factory=list)
    #: Fleet telemetry (a :class:`repro.obs.aggregate.FleetAggregator`)
    #: when the run was telemetered, else None.
    telemetry: Optional[object] = None
    #: Simulated time of the fleet's last durable state change, and how
    #: long past the last scheduled op state kept changing — populated
    #: only for telemetered runs.
    quiesced_at: Optional[float] = None
    settle_seconds: Optional[float] = None

    def sync_totals(self) -> dict[str, int]:
        return merge_sync_stats(self.sync)

    def phase_totals(self) -> dict:
        """Fleet phase accounting (see :func:`merge_phase_stats`);
        all-zero fractions when the run was not profiled."""
        return merge_phase_stats(self.sync)

    def message_totals(self) -> dict[str, float]:
        """Host-independent sync-message economics (see
        :func:`~repro.netsim.parallel.sync.message_stats`)."""
        return message_stats(self.sync, self.merged.get("events", 0))


def run_single(
    spec: ScenarioSpec,
    scheduler: str = "heap",
    with_obs: bool = False,
    profile: bool = False,
) -> dict:
    """The single-process oracle: same spec, one event loop. Returns
    the same summary shape workers produce (with ``wall_seconds`` of
    the run added for benchmarking).

    ``profile=True`` (implies observability) attaches the engine phase
    profiler and a convergence monitor; the summary then also carries
    ``profile`` (the :class:`~repro.netsim.engine.PhaseProfiler` dict)
    and ``quiesced_at``, so telemetered single and sharded runs are
    compared like-for-like.
    """
    obs = None
    if with_obs or profile:
        from repro.obs.hooks import Observability

        obs = Observability()
    net, channels, blocks = build(spec, scheduler=scheduler, obs=obs)
    profiler = None
    if profile:
        from repro.netsim.engine import PhaseProfiler
        from repro.obs.convergence import ConvergenceMonitor

        profiler = PhaseProfiler()
        net.sim.profiler = profiler
        obs.convergence = ConvergenceMonitor(net.sim)
    schedule_ops(spec, net, channels, blocks, owned=None)
    started = perf_counter()
    net.run(until=spec.duration)
    wall = perf_counter() - started
    summary = extract_summary(net, channels, blocks, owned=None, obs=obs)
    summary["wall_seconds"] = wall
    if profiler is not None:
        summary["profile"] = profiler.as_dict()
        summary["quiesced_at"] = obs.convergence.last_change
    return summary


def merge_summaries(summaries: list[dict]) -> dict:
    """Fold per-partition summaries into one oracle-shaped record.

    Node-keyed tables union disjointly (every node has exactly one
    owner); event counts and obs counters add."""
    merged: dict = {
        "channel_tables": {},
        "subscriptions": {},
        "blocks": {},
        "events": 0,
        "final_time": 0.0,
        "obs_counters": None,
    }
    obs_totals: Optional[dict] = None
    for summary in summaries:
        for key in ("channel_tables", "subscriptions", "blocks"):
            overlap = merged[key].keys() & summary[key].keys()
            if overlap:
                raise SimulationError(f"partition overlap in {key}: {sorted(overlap)}")
            merged[key].update(summary[key])
        merged["events"] += summary["events"]
        merged["final_time"] = max(merged["final_time"], summary["final_time"])
        counters = summary.get("obs_counters")
        if counters is not None:
            if obs_totals is None:
                obs_totals = {}
            for key, value in counters.items():
                if isinstance(value, tuple):
                    count, total = obs_totals.get(key, (0, 0.0))
                    obs_totals[key] = (count + value[0], total + value[1])
                else:
                    obs_totals[key] = obs_totals.get(key, 0) + value
    merged["obs_counters"] = obs_totals
    return merged


def _split_sharded_only(
    counters: dict,
) -> tuple[dict, dict]:
    """Partition a counter snapshot into (shared, sharded-only): the
    sharded-only families (``parallel_*``) exist only in partitioned
    runs and are checked for internal conservation rather than oracle
    equality."""
    shared: dict = {}
    sharded_only: dict = {}
    for key, value in counters.items():
        family = key[0]
        if family.startswith(SHARDED_ONLY_PREFIXES):
            sharded_only[key] = value
        else:
            shared[key] = value
    return shared, sharded_only


def _assert_proxy_conservation(sharded_only: dict) -> None:
    """Fleet conservation over the sharded-only counters: every packet
    (and byte) exported across a cut must be imported exactly once.
    This is the determinism guarantee the merged ``parallel_*``
    aggregation rests on — without it the families would not be safe to
    include in the snapshot at all."""
    totals = {"parallel_proxy_packets_total": 0,
              "parallel_proxy_bytes_total": 0,
              "parallel_proxy_import_packets_total": 0,
              "parallel_proxy_import_bytes_total": 0}
    for (family, _values), value in sharded_only.items():
        if family in totals:
            totals[family] += value
    for kind in ("packets", "bytes"):
        out = totals[f"parallel_proxy_{kind}_total"]
        into = totals[f"parallel_proxy_import_{kind}_total"]
        if out != into:
            raise AssertionError(
                f"proxy {kind} conservation violated: {out} exported "
                f"!= {into} imported"
            )


def assert_equivalent(merged: dict, oracle: dict) -> None:
    """Raise :class:`AssertionError` on any settled-state divergence
    between a merged sharded summary and the single-process oracle."""
    for key in ("channel_tables", "subscriptions", "blocks"):
        if merged[key] != oracle[key]:
            ours, theirs = merged[key], oracle[key]
            detail = sorted(
                set(ours) ^ set(theirs)
            ) or [k for k in ours if ours[k] != theirs[k]]
            raise AssertionError(
                f"sharded {key} diverge from oracle (first diffs: {detail[:5]})"
            )
    if merged["events"] != oracle["events"]:
        raise AssertionError(
            f"event counts diverge: sharded {merged['events']} "
            f"!= oracle {oracle['events']}"
        )
    ours, theirs = merged.get("obs_counters"), oracle.get("obs_counters")
    if ours is None or theirs is None:
        return
    ours, ours_sync = _split_sharded_only(ours)
    theirs, _ = _split_sharded_only(theirs)
    _assert_proxy_conservation(ours_sync)
    if set(ours) != set(theirs):
        missing = sorted(set(theirs) - set(ours))[:5]
        extra = sorted(set(ours) - set(theirs))[:5]
        raise AssertionError(
            f"obs counter families diverge (missing: {missing}, extra: {extra})"
        )
    for key in theirs:
        mine, ref = ours[key], theirs[key]
        if isinstance(ref, tuple):
            if mine[0] != ref[0] or not math.isclose(
                mine[1], ref[1], rel_tol=1e-9, abs_tol=1e-12
            ):
                raise AssertionError(f"histogram {key} diverges: {mine} != {ref}")
        elif mine != ref:
            raise AssertionError(f"counter {key} diverges: {mine} != {ref}")


def _spawn_worker(descriptor, rank, spec, plan, scheduler, with_obs, telemetry):
    """Child-process target (module-level so the spawn fallback can
    pickle it; under the usual fork context it is simply inherited)."""
    worker_main(descriptor, spec, plan, rank, scheduler, with_obs, telemetry)


class InlineTransport:
    """Drives PartitionWorker objects in-process — through the *same*
    encoded frames as the process transports, so inline runs exercise
    the full codec path and report identical frame counts."""

    name = "inline"

    def __init__(self, spec, plan, scheduler, with_obs, telemetry=None):
        self.telemetry = telemetry
        self.workers = [
            PartitionWorker(
                spec, plan, rank, scheduler=scheduler, with_obs=with_obs,
                telemetry=telemetry,
            )
            for rank in range(plan.n)
        ]
        self._pending: list[deque] = [deque() for _ in range(plan.n)]
        self.frames_sent = 0
        self.frames_received = 0
        for rank, worker in enumerate(self.workers):
            self._pending[rank].append(worker.ready_frame())

    def send_frame(self, rank: int, frame: bytes) -> None:
        self.frames_sent += 1
        reply, _done = serve_frame(self.workers[rank], frame)
        if reply is not None:
            self._pending[rank].append(reply)

    def recv_frame(self, rank: int) -> bytes:
        self.frames_received += 1
        return self._pending[rank].popleft()

    def wait_any(self, ranks: list[int]) -> list[int]:
        return [rank for rank in ranks if self._pending[rank]]

    def dump_flight(self, reason: str) -> None:
        """Inline workers live in this process; on coordinator failure
        their rings are dumped here (mp children dump their own)."""
        for worker in self.workers:
            if worker.flight is not None:
                try:
                    worker.flight.dump(
                        self.telemetry.flight_path(worker.rank), reason=reason
                    )
                except Exception:  # pragma: no cover - disk trouble
                    pass

    def close(self) -> None:
        pass


def _make_mp_transport(spec, plan, scheduler, with_obs, telemetry, choice):
    spawn = functools.partial(
        _spawn_worker,
        spec=spec,
        plan=plan,
        scheduler=scheduler,
        with_obs=with_obs,
        telemetry=telemetry,
    )
    if choice == "pipe":
        transport = PipeTransport(plan.n, spawn)
    else:
        transport = ShmTransport(plan.n, spawn)
    transport.dump_flight = lambda reason: None  # children dump their own
    return transport


class ParallelRunner:
    """Coordinate one sharded run of ``spec`` over ``n_workers``."""

    def __init__(
        self,
        spec: ScenarioSpec,
        n_workers: int,
        scheduler: str = "heap",
        mode: str = "mp",
        with_obs: bool = False,
        telemetry: Optional[TelemetryConfig] = None,
        plan: Optional[PartitionPlan] = None,
        sync_mode: str = "demand",
        transport: Optional[str] = None,
    ) -> None:
        if mode not in ("mp", "inline"):
            raise SimulationError(f"unknown runner mode {mode!r}")
        if sync_mode not in ("demand", "eager"):
            raise SimulationError(f"unknown sync mode {sync_mode!r}")
        self.spec = spec
        self.scheduler = scheduler
        self.mode = mode
        self.sync_mode = sync_mode
        self.transport = "inline" if mode == "inline" else transport_choice(transport)
        self.with_obs = with_obs or telemetry is not None
        self.telemetry = telemetry
        if plan is None:
            from repro.netsim.topology import TopologyBuilder

            builder = getattr(TopologyBuilder, spec.topology)
            topo = builder(seed=spec.seed, **spec.topology_kwargs)
            plan = plan_partitions(topo, n_workers, spec.source)
        self.plan = plan

    # -- frame helpers -----------------------------------------------------

    def _recv(self, transport, rank: int):
        kind, body = codec.decode_frame(transport.recv_frame(rank))
        if kind == codec.FRAME_ERROR:
            raise SimulationError(f"worker {rank} failed: {body}")
        return kind, body

    def _recv_report(self, transport, rank: int):
        kind, body = self._recv(transport, rank)
        if kind != codec.FRAME_REPORT:  # pragma: no cover - protocol guard
            raise SimulationError(
                f"worker {rank}: expected report frame, got {kind:#x}"
            )
        return body

    # -- the grant loop ----------------------------------------------------

    def run(self) -> ParallelResult:
        plan = self.plan
        duration = self.spec.duration
        n = plan.n
        eager = self.sync_mode == "eager"
        setup_started = perf_counter()
        if self.mode == "inline":
            transport = InlineTransport(
                self.spec, plan, self.scheduler, self.with_obs,
                telemetry=self.telemetry,
            )
        else:
            transport = _make_mp_transport(
                self.spec, plan, self.scheduler, self.with_obs,
                self.telemetry, self.transport,
            )
        closure = transitive_lookahead(plan.lookahead, plan.n)
        diag = [closure.get((rank, rank), inf) for rank in range(n)]
        aggregator = None
        if self.telemetry is not None:
            from repro.obs.aggregate import FleetAggregator

            aggregator = FleetAggregator()
        try:
            reported: list[list[float]] = []
            for rank in range(n):
                kind, body = self._recv(transport, rank)
                if kind != codec.FRAME_READY:  # pragma: no cover - guard
                    raise SimulationError(
                        f"worker {rank}: expected ready frame, got {kind:#x}"
                    )
                reported.append([body[0]])
            setup_seconds = perf_counter() - setup_started
            pending: list[list[tuple]] = [[] for _ in range(n)]
            finalized = [False] * n
            rounds = 0
            traces: list[RoundTrace] = []
            started = perf_counter()
            while not all(finalized):
                pending_min = [
                    min((rec[0] for rec in bucket), default=inf)
                    for bucket in pending
                ]
                next_eff = effective_next_times(
                    [times[0] for times in reported], pending_min
                )
                if eager:
                    horizons = compute_horizons(next_eff, closure)
                    grant_ranks = [r for r in range(n) if not finalized[r]]
                else:
                    horizons = grant_ceilings(next_eff, closure)
                    # Demand-driven: grant only workers that can act —
                    # dispatchable work below their ceiling, or nothing
                    # external pending before the scenario end (their
                    # final inclusive window). Quiet shards are skipped
                    # outright: no grant, no heartbeat, no frames.
                    grant_ranks = [
                        r for r in range(n)
                        if not finalized[r]
                        and (horizons[r] > duration or next_eff[r] < horizons[r])
                    ]
                    if not grant_ranks:  # pragma: no cover - protocol guard
                        # Impossible for positive lookaheads: the
                        # globally earliest worker always clears its own
                        # ceiling (which excludes its self-echo term).
                        raise SimulationError(
                            "conservative sync deadlock: no grantable worker"
                        )
                trace = RoundTrace(
                    round_index=rounds,
                    next_eff=list(next_eff),
                    horizons=list(horizons),
                    mode=self.sync_mode,
                )
                for rank in grant_ranks:
                    final = horizons[rank] > duration
                    if eager:
                        ladder = [horizons[rank]]
                    else:
                        ladder = build_ladder(
                            reported[rank], diag[rank], horizons[rank]
                        )
                    trace.ladders[rank] = ladder
                    transport.send_frame(
                        rank,
                        codec.encode_grant(ladder, pending[rank], final, eager),
                    )
                    pending[rank] = []
                    if eager:
                        finalized[rank] = final
                for rank in grant_ranks:
                    next_times, _windows, _dispatched, exports, done, _stall, snap = (
                        self._recv_report(transport, rank)
                    )
                    reported[rank] = next_times
                    if not eager and done:
                        finalized[rank] = True
                    if aggregator is not None and snap is not None:
                        aggregator.ingest(rank, snap)
                    trace.exports += len(exports)
                    for record in exports:
                        pending[record[3]].append(record)
                trace.frames = 2 * len(grant_ranks)
                traces.append(trace)
                rounds += 1
            # Trailing flush: exports addressed to already-finalized
            # workers necessarily arrive after the scenario end (the
            # final-window proof), so they are injected but never
            # dispatched — delivered anyway to keep the fleet's
            # proxy-in/out accounting closed.
            flush_ranks = [rank for rank in range(n) if pending[rank]]
            for rank in flush_ranks:
                early = [rec for rec in pending[rank] if rec[0] <= duration]
                if early:  # pragma: no cover - protocol invariant guard
                    raise SimulationError(
                        f"late import at t<=duration for finalized worker "
                        f"{rank}: {early[0][:4]}"
                    )
            if flush_ranks:
                trace = RoundTrace(
                    round_index=rounds, mode=self.sync_mode,
                    frames=2 * len(flush_ranks),
                )
                for rank in flush_ranks:
                    transport.send_frame(
                        rank,
                        codec.encode_grant([inf], pending[rank], True, eager),
                    )
                    pending[rank] = []
                for rank in flush_ranks:
                    *_rest, snap = self._recv_report(transport, rank)
                    if aggregator is not None and snap is not None:
                        aggregator.ingest(rank, snap)
                traces.append(trace)
                rounds += 1
            wall = perf_counter() - started
            raw = []
            for rank in range(n):
                transport.send_frame(rank, codec.RESULT_REQ_FRAME)
            for rank in range(n):
                kind, body = self._recv(transport, rank)
                if kind != codec.FRAME_RESULT:  # pragma: no cover - guard
                    raise SimulationError(
                        f"worker {rank}: expected result frame, got {kind:#x}"
                    )
                raw.append(body)
            for rank in range(n):
                transport.send_frame(rank, codec.EXIT_FRAME)
        except Exception as exc:
            if self.telemetry is not None and self.telemetry.flight_dir:
                transport.dump_flight(f"error:{type(exc).__name__}: {exc}")
            raise
        finally:
            transport.close()
        summaries = [reply[0] for reply in raw]
        stats = [reply[1] for reply in raw]
        cores = os.cpu_count() or 1
        run_warnings: list[str] = []
        if self.mode == "mp" and cores < plan.n:
            # The workers themselves time-slice fewer cores than there
            # are shards: the measured speedup reflects the host, not
            # the protocol. (The coordinator mostly blocks on the
            # workers, so n workers on n cores can still win.)
            run_warnings.append("cores_limited")
        if self.mode == "mp" and setup_seconds > wall:
            run_warnings.append("setup_dominated")
        result = ParallelResult(
            plan=plan,
            summaries=summaries,
            sync=stats,
            rounds=rounds,
            wall_seconds=wall,
            setup_seconds=setup_seconds,
            cores_available=cores,
            warnings=run_warnings,
            transport=self.transport,
            sync_mode=self.sync_mode,
            round_traces=traces,
        )
        result.merged = merge_summaries(summaries)
        if aggregator is not None:
            from repro.obs.convergence import settle_seconds as settle

            for reply in raw:
                aggregator.ingest(reply[1].rank, reply[2])
            result.telemetry = aggregator
            result.quiesced_at = aggregator.quiesced_at()
            # all_ops(), not .ops: opgen-backed specs keep the inline
            # tuple empty and regenerate the workload on demand.
            result.settle_seconds = settle(
                result.quiesced_at, self.spec.all_ops()
            )
        return result
