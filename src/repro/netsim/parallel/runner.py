"""The coordinator: spawn workers, run LBTS rounds, merge results.

:class:`ParallelRunner` executes one :class:`ScenarioSpec` across N
partitions. Two execution modes share the exact same round protocol:

* ``mode="mp"`` — one ``multiprocessing`` child per partition, pipes
  for the null-message/horizon exchange. Rounds are genuinely
  concurrent: the coordinator sends every worker its horizon, then
  collects every reply.
* ``mode="inline"`` — the same :class:`PartitionWorker` objects driven
  sequentially in-process. Single-core test environments exercise the
  full protocol (partitioning, proxies, horizons, determinism) without
  needing real parallelism; results are identical to ``mp`` because
  the round protocol is deterministic.

:func:`run_single` runs the unsharded oracle and
:func:`assert_equivalent` pins the contract: merged per-partition
summaries equal the oracle's settled ``ChannelState`` tables,
subscription/delivery state, event counts, and obs counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from math import inf
from time import perf_counter
from typing import Optional

from repro.errors import SimulationError
from repro.netsim.parallel.partition import PartitionPlan, plan_partitions
from repro.netsim.parallel.scenario import ScenarioSpec, build, schedule_ops
from repro.netsim.parallel.sync import (
    SyncStats,
    compute_horizons,
    effective_next_times,
    merge_sync_stats,
    transitive_lookahead,
)
from repro.netsim.parallel.worker import (
    CMD_EXIT,
    CMD_RESULT,
    CMD_ROUND,
    FINAL,
    PartitionWorker,
    extract_summary,
    worker_main,
)


@dataclass
class ParallelResult:
    """Outcome of one sharded run."""

    plan: PartitionPlan
    summaries: list[dict]
    sync: list[SyncStats]
    rounds: int
    #: Wall seconds of the round loop (build/spawn excluded — setup is
    #: a fixed cost the speedup measurement should not charge to the
    #: sync protocol).
    wall_seconds: float
    merged: dict = field(default_factory=dict)

    def sync_totals(self) -> dict[str, int]:
        return merge_sync_stats(self.sync)


def run_single(
    spec: ScenarioSpec, scheduler: str = "heap", with_obs: bool = False
) -> dict:
    """The single-process oracle: same spec, one event loop. Returns
    the same summary shape workers produce (with ``wall_seconds`` of
    the run added for benchmarking)."""
    obs = None
    if with_obs:
        from repro.obs.hooks import Observability

        obs = Observability()
    net, channels, blocks = build(spec, scheduler=scheduler, obs=obs)
    schedule_ops(spec, net, channels, blocks, owned=None)
    started = perf_counter()
    net.run(until=spec.duration)
    wall = perf_counter() - started
    summary = extract_summary(net, channels, blocks, owned=None, obs=obs)
    summary["wall_seconds"] = wall
    return summary


def merge_summaries(summaries: list[dict]) -> dict:
    """Fold per-partition summaries into one oracle-shaped record.

    Node-keyed tables union disjointly (every node has exactly one
    owner); event counts and obs counters add."""
    merged: dict = {
        "channel_tables": {},
        "subscriptions": {},
        "blocks": {},
        "events": 0,
        "final_time": 0.0,
        "obs_counters": None,
    }
    obs_totals: Optional[dict] = None
    for summary in summaries:
        for key in ("channel_tables", "subscriptions", "blocks"):
            overlap = merged[key].keys() & summary[key].keys()
            if overlap:
                raise SimulationError(f"partition overlap in {key}: {sorted(overlap)}")
            merged[key].update(summary[key])
        merged["events"] += summary["events"]
        merged["final_time"] = max(merged["final_time"], summary["final_time"])
        counters = summary.get("obs_counters")
        if counters is not None:
            if obs_totals is None:
                obs_totals = {}
            for key, value in counters.items():
                if isinstance(value, tuple):
                    count, total = obs_totals.get(key, (0, 0.0))
                    obs_totals[key] = (count + value[0], total + value[1])
                else:
                    obs_totals[key] = obs_totals.get(key, 0) + value
    merged["obs_counters"] = obs_totals
    return merged


def assert_equivalent(merged: dict, oracle: dict) -> None:
    """Raise :class:`AssertionError` on any settled-state divergence
    between a merged sharded summary and the single-process oracle."""
    for key in ("channel_tables", "subscriptions", "blocks"):
        if merged[key] != oracle[key]:
            ours, theirs = merged[key], oracle[key]
            detail = sorted(
                set(ours) ^ set(theirs)
            ) or [k for k in ours if ours[k] != theirs[k]]
            raise AssertionError(
                f"sharded {key} diverge from oracle (first diffs: {detail[:5]})"
            )
    if merged["events"] != oracle["events"]:
        raise AssertionError(
            f"event counts diverge: sharded {merged['events']} "
            f"!= oracle {oracle['events']}"
        )
    ours, theirs = merged.get("obs_counters"), oracle.get("obs_counters")
    if ours is None or theirs is None:
        return
    if set(ours) != set(theirs):
        missing = sorted(set(theirs) - set(ours))[:5]
        extra = sorted(set(ours) - set(theirs))[:5]
        raise AssertionError(
            f"obs counter families diverge (missing: {missing}, extra: {extra})"
        )
    for key in theirs:
        mine, ref = ours[key], theirs[key]
        if isinstance(ref, tuple):
            if mine[0] != ref[0] or not math.isclose(
                mine[1], ref[1], rel_tol=1e-9, abs_tol=1e-12
            ):
                raise AssertionError(f"histogram {key} diverges: {mine} != {ref}")
        elif mine != ref:
            raise AssertionError(f"counter {key} diverges: {mine} != {ref}")


class _InlineTransport:
    """Drives PartitionWorker objects in-process, same protocol."""

    def __init__(self, spec, plan, scheduler, with_obs):
        self.workers = [
            PartitionWorker(spec, plan, rank, scheduler=scheduler, with_obs=with_obs)
            for rank in range(plan.n)
        ]

    def initial(self) -> list[float]:
        return [w.next_time() for w in self.workers]

    def round(self, commands: dict[int, tuple]) -> dict[int, tuple]:
        return {
            rank: self.workers[rank].run_round(horizon, imports)
            for rank, (horizon, imports) in commands.items()
        }

    def results(self) -> list[tuple[dict, SyncStats]]:
        return [(w.summary(), w.stats) for w in self.workers]

    def close(self) -> None:
        pass


class _ProcessTransport:
    """One multiprocessing child per partition, pipe per worker."""

    def __init__(self, spec, plan, scheduler, with_obs):
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context()
        self.conns = []
        self.procs = []
        for rank in range(plan.n):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=worker_main,
                args=(child, spec, plan, rank, scheduler, with_obs),
                daemon=True,
            )
            proc.start()
            child.close()
            self.conns.append(parent)
            self.procs.append(proc)

    def _recv(self, rank: int):
        reply = self.conns[rank].recv()
        if isinstance(reply, tuple) and reply and reply[0] == "error":
            raise SimulationError(f"worker {rank} failed: {reply[1]}")
        return reply

    def initial(self) -> list[float]:
        times = []
        for rank in range(len(self.conns)):
            _tag, next_time, _ops = self._recv(rank)
            times.append(next_time)
        return times

    def round(self, commands: dict[int, tuple]) -> dict[int, tuple]:
        for rank, (horizon, imports) in commands.items():
            self.conns[rank].send((CMD_ROUND, horizon, imports))
        return {rank: self._recv(rank) for rank in commands}

    def results(self) -> list[tuple[dict, SyncStats]]:
        for conn in self.conns:
            conn.send((CMD_RESULT,))
        return [self._recv(rank) for rank in range(len(self.conns))]

    def close(self) -> None:
        for conn in self.conns:
            try:
                conn.send((CMD_EXIT,))
            except (BrokenPipeError, OSError):
                pass
        for proc in self.procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hang guard
                proc.terminate()
        for conn in self.conns:
            conn.close()


class ParallelRunner:
    """Coordinate one sharded run of ``spec`` over ``n_workers``."""

    def __init__(
        self,
        spec: ScenarioSpec,
        n_workers: int,
        scheduler: str = "heap",
        mode: str = "mp",
        with_obs: bool = False,
        plan: Optional[PartitionPlan] = None,
    ) -> None:
        if mode not in ("mp", "inline"):
            raise SimulationError(f"unknown runner mode {mode!r}")
        self.spec = spec
        self.scheduler = scheduler
        self.mode = mode
        self.with_obs = with_obs
        if plan is None:
            from repro.netsim.topology import TopologyBuilder

            builder = getattr(TopologyBuilder, spec.topology)
            topo = builder(seed=spec.seed, **spec.topology_kwargs)
            plan = plan_partitions(topo, n_workers, spec.source)
        self.plan = plan

    def run(self) -> ParallelResult:
        plan = self.plan
        duration = self.spec.duration
        transport = (
            _ProcessTransport(self.spec, plan, self.scheduler, self.with_obs)
            if self.mode == "mp"
            else _InlineTransport(self.spec, plan, self.scheduler, self.with_obs)
        )
        closure = transitive_lookahead(plan.lookahead, plan.n)
        try:
            reported = transport.initial()
            n = plan.n
            pending: list[list[tuple]] = [[] for _ in range(n)]
            finalized = [False] * n
            rounds = 0
            started = perf_counter()
            while not all(finalized):
                pending_min = [
                    min((rec[0] for rec in bucket), default=inf) for bucket in pending
                ]
                next_eff = effective_next_times(reported, pending_min)
                horizons = compute_horizons(next_eff, closure)
                commands: dict[int, tuple] = {}
                for rank in range(n):
                    if finalized[rank]:
                        continue
                    if horizons[rank] > duration:
                        # Nothing external can arrive at or before the
                        # scenario end: take the final inclusive window.
                        commands[rank] = (FINAL, pending[rank])
                        finalized[rank] = True
                    else:
                        commands[rank] = (horizons[rank], pending[rank])
                    pending[rank] = []
                replies = transport.round(commands)
                rounds += 1
                for rank, (next_time, exports, _dispatched) in replies.items():
                    reported[rank] = next_time
                    for record in exports:
                        pending[record[3]].append(record)
            # Trailing flush: exports addressed to already-finalized
            # workers necessarily arrive after the scenario end (the
            # FINAL horizon proof), so they are injected but never
            # dispatched — delivered anyway to keep the fleet's
            # proxy-in/out accounting closed.
            flush = {
                rank: (FINAL, bucket)
                for rank, bucket in enumerate(pending)
                if bucket
            }
            for rank, (_h, bucket) in flush.items():
                early = [rec for rec in bucket if rec[0] <= duration]
                if early:  # pragma: no cover - protocol invariant guard
                    raise SimulationError(
                        f"late import at t<=duration for finalized worker "
                        f"{rank}: {early[0][:4]}"
                    )
            if flush:
                transport.round(flush)
                rounds += 1
            wall = perf_counter() - started
            raw = transport.results()
        finally:
            transport.close()
        summaries = [summary for summary, _stats in raw]
        stats = [s for _summary, s in raw]
        result = ParallelResult(
            plan=plan,
            summaries=summaries,
            sync=stats,
            rounds=rounds,
            wall_seconds=wall,
        )
        result.merged = merge_summaries(summaries)
        return result
