"""The coordinator: spawn workers, run LBTS rounds, merge results.

:class:`ParallelRunner` executes one :class:`ScenarioSpec` across N
partitions. Two execution modes share the exact same round protocol:

* ``mode="mp"`` — one ``multiprocessing`` child per partition, pipes
  for the null-message/horizon exchange. Rounds are genuinely
  concurrent: the coordinator sends every worker its horizon, then
  collects every reply.
* ``mode="inline"`` — the same :class:`PartitionWorker` objects driven
  sequentially in-process. Single-core test environments exercise the
  full protocol (partitioning, proxies, horizons, determinism) without
  needing real parallelism; results are identical to ``mp`` because
  the round protocol is deterministic.

:func:`run_single` runs the unsharded oracle and
:func:`assert_equivalent` pins the contract: merged per-partition
summaries equal the oracle's settled ``ChannelState`` tables,
subscription/delivery state, event counts, and obs counters.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from math import inf
from time import perf_counter
from typing import Optional

from repro.errors import SimulationError
from repro.netsim.parallel.partition import PartitionPlan, plan_partitions
from repro.netsim.parallel.scenario import ScenarioSpec, build, schedule_ops
from repro.netsim.parallel.sync import (
    SyncStats,
    compute_horizons,
    effective_next_times,
    merge_phase_stats,
    merge_sync_stats,
    transitive_lookahead,
)
from repro.netsim.parallel.worker import (
    CMD_EXIT,
    CMD_RESULT,
    CMD_ROUND,
    FINAL,
    SHARDED_ONLY_PREFIXES,
    PartitionWorker,
    TelemetryConfig,
    extract_summary,
    worker_main,
)


@dataclass
class ParallelResult:
    """Outcome of one sharded run."""

    plan: PartitionPlan
    summaries: list[dict]
    sync: list[SyncStats]
    rounds: int
    #: Wall seconds of the round loop (build/spawn excluded — setup is
    #: a fixed cost the speedup measurement should not charge to the
    #: sync protocol).
    wall_seconds: float
    #: Wall seconds of partition build + worker spawn + first report
    #: (the fixed cost excluded from ``wall_seconds``). When this
    #: dwarfs the round loop the run is measuring process startup, not
    #: the protocol — see ``warnings``.
    setup_seconds: float = 0.0
    #: CPU cores the host exposes (``os.cpu_count()``); sharded runs
    #: cannot beat single-process when the workers are time-slicing one
    #: core.
    cores_available: int = 1
    #: Diagnostic flags: ``cores_limited`` (fewer cores than workers —
    #: any measured speedup < 1 reflects the host, not the protocol)
    #: and ``setup_dominated`` (setup took longer than the round loop —
    #: scale the workload up before trusting the speedup).
    warnings: list = field(default_factory=list)
    merged: dict = field(default_factory=dict)
    #: Fleet telemetry (a :class:`repro.obs.aggregate.FleetAggregator`)
    #: when the run was telemetered, else None.
    telemetry: Optional[object] = None
    #: Simulated time of the fleet's last durable state change, and how
    #: long past the last scheduled op state kept changing — populated
    #: only for telemetered runs.
    quiesced_at: Optional[float] = None
    settle_seconds: Optional[float] = None

    def sync_totals(self) -> dict[str, int]:
        return merge_sync_stats(self.sync)

    def phase_totals(self) -> dict:
        """Fleet phase accounting (see :func:`merge_phase_stats`);
        all-zero fractions when the run was not profiled."""
        return merge_phase_stats(self.sync)


def run_single(
    spec: ScenarioSpec,
    scheduler: str = "heap",
    with_obs: bool = False,
    profile: bool = False,
) -> dict:
    """The single-process oracle: same spec, one event loop. Returns
    the same summary shape workers produce (with ``wall_seconds`` of
    the run added for benchmarking).

    ``profile=True`` (implies observability) attaches the engine phase
    profiler and a convergence monitor; the summary then also carries
    ``profile`` (the :class:`~repro.netsim.engine.PhaseProfiler` dict)
    and ``quiesced_at``, so telemetered single and sharded runs are
    compared like-for-like.
    """
    obs = None
    if with_obs or profile:
        from repro.obs.hooks import Observability

        obs = Observability()
    net, channels, blocks = build(spec, scheduler=scheduler, obs=obs)
    profiler = None
    if profile:
        from repro.netsim.engine import PhaseProfiler
        from repro.obs.convergence import ConvergenceMonitor

        profiler = PhaseProfiler()
        net.sim.profiler = profiler
        obs.convergence = ConvergenceMonitor(net.sim)
    schedule_ops(spec, net, channels, blocks, owned=None)
    started = perf_counter()
    net.run(until=spec.duration)
    wall = perf_counter() - started
    summary = extract_summary(net, channels, blocks, owned=None, obs=obs)
    summary["wall_seconds"] = wall
    if profiler is not None:
        summary["profile"] = profiler.as_dict()
        summary["quiesced_at"] = obs.convergence.last_change
    return summary


def merge_summaries(summaries: list[dict]) -> dict:
    """Fold per-partition summaries into one oracle-shaped record.

    Node-keyed tables union disjointly (every node has exactly one
    owner); event counts and obs counters add."""
    merged: dict = {
        "channel_tables": {},
        "subscriptions": {},
        "blocks": {},
        "events": 0,
        "final_time": 0.0,
        "obs_counters": None,
    }
    obs_totals: Optional[dict] = None
    for summary in summaries:
        for key in ("channel_tables", "subscriptions", "blocks"):
            overlap = merged[key].keys() & summary[key].keys()
            if overlap:
                raise SimulationError(f"partition overlap in {key}: {sorted(overlap)}")
            merged[key].update(summary[key])
        merged["events"] += summary["events"]
        merged["final_time"] = max(merged["final_time"], summary["final_time"])
        counters = summary.get("obs_counters")
        if counters is not None:
            if obs_totals is None:
                obs_totals = {}
            for key, value in counters.items():
                if isinstance(value, tuple):
                    count, total = obs_totals.get(key, (0, 0.0))
                    obs_totals[key] = (count + value[0], total + value[1])
                else:
                    obs_totals[key] = obs_totals.get(key, 0) + value
    merged["obs_counters"] = obs_totals
    return merged


def _split_sharded_only(
    counters: dict,
) -> tuple[dict, dict]:
    """Partition a counter snapshot into (shared, sharded-only): the
    sharded-only families (``parallel_*``) exist only in partitioned
    runs and are checked for internal conservation rather than oracle
    equality."""
    shared: dict = {}
    sharded_only: dict = {}
    for key, value in counters.items():
        family = key[0]
        if family.startswith(SHARDED_ONLY_PREFIXES):
            sharded_only[key] = value
        else:
            shared[key] = value
    return shared, sharded_only


def _assert_proxy_conservation(sharded_only: dict) -> None:
    """Fleet conservation over the sharded-only counters: every packet
    (and byte) exported across a cut must be imported exactly once.
    This is the determinism guarantee the merged ``parallel_*``
    aggregation rests on — without it the families would not be safe to
    include in the snapshot at all."""
    totals = {"parallel_proxy_packets_total": 0,
              "parallel_proxy_bytes_total": 0,
              "parallel_proxy_import_packets_total": 0,
              "parallel_proxy_import_bytes_total": 0}
    for (family, _values), value in sharded_only.items():
        if family in totals:
            totals[family] += value
    for kind in ("packets", "bytes"):
        out = totals[f"parallel_proxy_{kind}_total"]
        into = totals[f"parallel_proxy_import_{kind}_total"]
        if out != into:
            raise AssertionError(
                f"proxy {kind} conservation violated: {out} exported "
                f"!= {into} imported"
            )


def assert_equivalent(merged: dict, oracle: dict) -> None:
    """Raise :class:`AssertionError` on any settled-state divergence
    between a merged sharded summary and the single-process oracle."""
    for key in ("channel_tables", "subscriptions", "blocks"):
        if merged[key] != oracle[key]:
            ours, theirs = merged[key], oracle[key]
            detail = sorted(
                set(ours) ^ set(theirs)
            ) or [k for k in ours if ours[k] != theirs[k]]
            raise AssertionError(
                f"sharded {key} diverge from oracle (first diffs: {detail[:5]})"
            )
    if merged["events"] != oracle["events"]:
        raise AssertionError(
            f"event counts diverge: sharded {merged['events']} "
            f"!= oracle {oracle['events']}"
        )
    ours, theirs = merged.get("obs_counters"), oracle.get("obs_counters")
    if ours is None or theirs is None:
        return
    ours, ours_sync = _split_sharded_only(ours)
    theirs, _ = _split_sharded_only(theirs)
    _assert_proxy_conservation(ours_sync)
    if set(ours) != set(theirs):
        missing = sorted(set(theirs) - set(ours))[:5]
        extra = sorted(set(ours) - set(theirs))[:5]
        raise AssertionError(
            f"obs counter families diverge (missing: {missing}, extra: {extra})"
        )
    for key in theirs:
        mine, ref = ours[key], theirs[key]
        if isinstance(ref, tuple):
            if mine[0] != ref[0] or not math.isclose(
                mine[1], ref[1], rel_tol=1e-9, abs_tol=1e-12
            ):
                raise AssertionError(f"histogram {key} diverges: {mine} != {ref}")
        elif mine != ref:
            raise AssertionError(f"counter {key} diverges: {mine} != {ref}")


class _InlineTransport:
    """Drives PartitionWorker objects in-process, same protocol."""

    def __init__(self, spec, plan, scheduler, with_obs, telemetry=None):
        self.telemetry = telemetry
        self.workers = [
            PartitionWorker(
                spec, plan, rank, scheduler=scheduler, with_obs=with_obs,
                telemetry=telemetry,
            )
            for rank in range(plan.n)
        ]

    def initial(self) -> list[float]:
        return [w.next_time() for w in self.workers]

    def round(self, commands: dict[int, tuple]) -> dict[int, tuple]:
        return {
            rank: self.workers[rank].run_round(horizon, imports)
            for rank, (horizon, imports) in commands.items()
        }

    def results(self) -> list[tuple]:
        return [
            (w.summary(), w.stats, w.telemetry_snapshot(final=True))
            for w in self.workers
        ]

    def dump_flight(self, reason: str) -> None:
        """Inline workers live in this process; on coordinator failure
        their rings are dumped here (mp children dump their own)."""
        for worker in self.workers:
            if worker.flight is not None:
                try:
                    worker.flight.dump(
                        self.telemetry.flight_path(worker.rank), reason=reason
                    )
                except Exception:  # pragma: no cover - disk trouble
                    pass

    def close(self) -> None:
        pass


class _ProcessTransport:
    """One multiprocessing child per partition, pipe per worker."""

    def __init__(self, spec, plan, scheduler, with_obs, telemetry=None):
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context()
        self.conns = []
        self.procs = []
        for rank in range(plan.n):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=worker_main,
                args=(child, spec, plan, rank, scheduler, with_obs, telemetry),
                daemon=True,
            )
            proc.start()
            child.close()
            self.conns.append(parent)
            self.procs.append(proc)

    def dump_flight(self, reason: str) -> None:
        pass  # mp children dump their own rings in worker_main

    def _recv(self, rank: int):
        reply = self.conns[rank].recv()
        if isinstance(reply, tuple) and reply and reply[0] == "error":
            raise SimulationError(f"worker {rank} failed: {reply[1]}")
        return reply

    def initial(self) -> list[float]:
        times = []
        for rank in range(len(self.conns)):
            _tag, next_time, _ops = self._recv(rank)
            times.append(next_time)
        return times

    def round(self, commands: dict[int, tuple]) -> dict[int, tuple]:
        for rank, (horizon, imports) in commands.items():
            self.conns[rank].send((CMD_ROUND, horizon, imports))
        return {rank: self._recv(rank) for rank in commands}

    def results(self) -> list[tuple]:
        for conn in self.conns:
            conn.send((CMD_RESULT,))
        return [self._recv(rank) for rank in range(len(self.conns))]

    def close(self) -> None:
        for conn in self.conns:
            try:
                conn.send((CMD_EXIT,))
            except (BrokenPipeError, OSError):
                pass
        for proc in self.procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hang guard
                proc.terminate()
        for conn in self.conns:
            conn.close()


class ParallelRunner:
    """Coordinate one sharded run of ``spec`` over ``n_workers``."""

    def __init__(
        self,
        spec: ScenarioSpec,
        n_workers: int,
        scheduler: str = "heap",
        mode: str = "mp",
        with_obs: bool = False,
        telemetry: Optional[TelemetryConfig] = None,
        plan: Optional[PartitionPlan] = None,
    ) -> None:
        if mode not in ("mp", "inline"):
            raise SimulationError(f"unknown runner mode {mode!r}")
        self.spec = spec
        self.scheduler = scheduler
        self.mode = mode
        self.with_obs = with_obs or telemetry is not None
        self.telemetry = telemetry
        if plan is None:
            from repro.netsim.topology import TopologyBuilder

            builder = getattr(TopologyBuilder, spec.topology)
            topo = builder(seed=spec.seed, **spec.topology_kwargs)
            plan = plan_partitions(topo, n_workers, spec.source)
        self.plan = plan

    def run(self) -> ParallelResult:
        plan = self.plan
        duration = self.spec.duration
        make = _ProcessTransport if self.mode == "mp" else _InlineTransport
        setup_started = perf_counter()
        transport = make(
            self.spec, plan, self.scheduler, self.with_obs,
            telemetry=self.telemetry,
        )
        closure = transitive_lookahead(plan.lookahead, plan.n)
        aggregator = None
        if self.telemetry is not None:
            from repro.obs.aggregate import FleetAggregator

            aggregator = FleetAggregator()
        try:
            reported = transport.initial()
            setup_seconds = perf_counter() - setup_started
            n = plan.n
            pending: list[list[tuple]] = [[] for _ in range(n)]
            finalized = [False] * n
            rounds = 0
            started = perf_counter()
            while not all(finalized):
                pending_min = [
                    min((rec[0] for rec in bucket), default=inf) for bucket in pending
                ]
                next_eff = effective_next_times(reported, pending_min)
                horizons = compute_horizons(next_eff, closure)
                commands: dict[int, tuple] = {}
                for rank in range(n):
                    if finalized[rank]:
                        continue
                    if horizons[rank] > duration:
                        # Nothing external can arrive at or before the
                        # scenario end: take the final inclusive window.
                        commands[rank] = (FINAL, pending[rank])
                        finalized[rank] = True
                    else:
                        commands[rank] = (horizons[rank], pending[rank])
                    pending[rank] = []
                replies = transport.round(commands)
                rounds += 1
                for rank, (next_time, exports, _dispatched, snap) in replies.items():
                    reported[rank] = next_time
                    if aggregator is not None:
                        aggregator.ingest(rank, snap)
                    for record in exports:
                        pending[record[3]].append(record)
            # Trailing flush: exports addressed to already-finalized
            # workers necessarily arrive after the scenario end (the
            # FINAL horizon proof), so they are injected but never
            # dispatched — delivered anyway to keep the fleet's
            # proxy-in/out accounting closed.
            flush = {
                rank: (FINAL, bucket)
                for rank, bucket in enumerate(pending)
                if bucket
            }
            for rank, (_h, bucket) in flush.items():
                early = [rec for rec in bucket if rec[0] <= duration]
                if early:  # pragma: no cover - protocol invariant guard
                    raise SimulationError(
                        f"late import at t<=duration for finalized worker "
                        f"{rank}: {early[0][:4]}"
                    )
            if flush:
                transport.round(flush)
                rounds += 1
            wall = perf_counter() - started
            raw = transport.results()
        except Exception as exc:
            if self.telemetry is not None and self.telemetry.flight_dir:
                transport.dump_flight(f"error:{type(exc).__name__}: {exc}")
            raise
        finally:
            transport.close()
        summaries = [reply[0] for reply in raw]
        stats = [reply[1] for reply in raw]
        cores = os.cpu_count() or 1
        run_warnings: list[str] = []
        if self.mode == "mp" and cores < plan.n:
            # The workers themselves time-slice fewer cores than there
            # are shards: the measured speedup reflects the host, not
            # the protocol. (The coordinator mostly blocks on the
            # workers, so n workers on n cores can still win.)
            run_warnings.append("cores_limited")
        if self.mode == "mp" and setup_seconds > wall:
            run_warnings.append("setup_dominated")
        result = ParallelResult(
            plan=plan,
            summaries=summaries,
            sync=stats,
            rounds=rounds,
            wall_seconds=wall,
            setup_seconds=setup_seconds,
            cores_available=cores,
            warnings=run_warnings,
        )
        result.merged = merge_summaries(summaries)
        if aggregator is not None:
            from repro.obs.convergence import settle_seconds as settle

            for reply in raw:
                aggregator.ingest(reply[1].rank, reply[2])
            result.telemetry = aggregator
            result.quiesced_at = aggregator.quiesced_at()
            # all_ops(), not .ops: opgen-backed specs keep the inline
            # tuple empty and regenerate the workload on demand.
            result.settle_seconds = settle(
                result.quiesced_at, self.spec.all_ops()
            )
        return result
