"""Coordinator/worker frame transports for the sharded runner.

The sync protocol speaks length-delimited binary *frames* (see the
frame codecs in :mod:`repro.netsim.parallel.codec`); this module moves
those frames between the coordinator and its workers. Three
implementations share one interface:

* :class:`PipeTransport` — one ``multiprocessing`` pipe per worker,
  frames as ``send_bytes``/``recv_bytes`` payloads. The portable
  baseline (and the ``REPRO_TRANSPORT=pipe`` escape hatch).
* :class:`ShmTransport` — one :class:`RingBuffer` pair per worker over
  ``multiprocessing.shared_memory``: length-prefixed frames, monotonic
  byte counters, a frame generation counter, and futex-free
  spin-then-sleep waits. Zero pickle and zero syscalls on the hot
  loop; the default for ``mode="mp"``.
* the inline runner's ``InlineTransport`` (in
  :mod:`repro.netsim.parallel.runner`) — in-process byte queues that
  route commands through the *same* encoded frames as the process
  transports, so frame counts and codec coverage are identical across
  all three (the determinism tests rely on it).

Crash safety: a worker dying mid-frame must surface as a
:class:`TransportError`, never a hang. The ring reader distinguishes
"writer still mid-frame" from "writer gone" by the generation counter
(frames fully published) combined with an ``alive`` probe supplied by
the coordinator (the child process' liveness).

``REPRO_TRANSPORT`` (``shm`` or ``pipe``) forces the mp transport
choice process-wide, the same override idiom as ``REPRO_NATIVE``.
"""

from __future__ import annotations

import os
import struct
import time
from typing import Callable, Optional

from repro.errors import SimulationError


class TransportError(SimulationError):
    """A transport endpoint failed (peer died, ring closed)."""


def transport_choice(requested: Optional[str] = None) -> str:
    """Resolve the mp transport name: explicit argument beats the
    ``REPRO_TRANSPORT`` environment override beats the shm default."""
    choice = requested or os.environ.get("REPRO_TRANSPORT") or "shm"
    if choice not in ("shm", "pipe"):
        raise SimulationError(
            f"unknown transport {choice!r} (expected 'shm' or 'pipe')"
        )
    return choice


#: Ring header: write_pos(8) read_pos(8) frames_written(8) closed(1),
#: padded to one cache line so the data region never shares a line
#: with the counters. Each field lives at its own fixed offset and is
#: written with a single-field pack — producer and consumer update
#: *disjoint* words, never a read-modify-write of the whole header
#: (which would let one side clobber the other's concurrent advance).
_U64 = struct.Struct("<Q")
_OFF_WRITE = 0
_OFF_READ = 8
_OFF_GEN = 16
_OFF_CLOSED = 24
_HEADER_SIZE = 64
_LEN_PREFIX = struct.Struct("<I")

#: Default per-direction ring capacity. Export batches for the bench
#: scenarios run a few KiB per frame; 1 MiB absorbs bursts without the
#: writer ever blocking, while keeping a 4-worker run under 8 MiB.
DEFAULT_RING_BYTES = 1 << 20

#: Spin iterations before the waiter starts sleeping, and the sleep
#: quantum once it does. The spin phase covers the common case (the
#: peer is actively producing); the sleep bounds CPU burn when a shard
#: goes quiet for a long grant.
_SPIN_ROUNDS = 2000
_SLEEP_SECONDS = 50e-6
#: How often (in sleep iterations) a blocked endpoint probes peer
#: liveness — frequent enough that a crashed worker surfaces in well
#: under a second, rare enough to stay off the hot path.
_ALIVE_EVERY = 200


class RingBuffer:
    """One single-producer/single-consumer byte ring in shared memory.

    Layout: a 64-byte header (monotonic ``write_pos``/``read_pos`` byte
    counters, a ``frames_written`` generation counter, a ``closed``
    flag) followed by ``capacity`` data bytes. Positions are *monotonic*
    — the ring offset is ``pos % capacity`` — so fullness is simply
    ``write_pos - read_pos`` and the empty/full ambiguity of wrapped
    indices never arises. Each counter has exactly one writer (producer
    owns ``write_pos``/``frames_written``/``closed``, consumer owns
    ``read_pos``), and payload bytes are written before the counter
    publish, so a reader never observes a length prefix whose bytes are
    not yet in place.

    Frames are ``u32 length + payload`` and *stream*: a frame larger
    than the free space (or the whole ring) is written in chunks as the
    reader drains, and read in chunks as the writer lands them — one
    code path covers both backpressure and the frame-larger-than-ring
    case. ``alive`` (an optional callable) is probed while blocked; if
    it reports the peer dead and no complete frame is pending, the
    endpoint raises :class:`TransportError` instead of spinning
    forever.
    """

    def __init__(self, shm, capacity: int) -> None:
        self.shm = shm
        self.capacity = capacity
        self.buf = shm.buf

    @classmethod
    def create(cls, capacity: int = DEFAULT_RING_BYTES) -> "RingBuffer":
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(
            create=True, size=_HEADER_SIZE + capacity
        )
        ring = cls(shm, capacity)
        shm.buf[:_HEADER_SIZE] = bytes(_HEADER_SIZE)
        return ring

    @classmethod
    def attach(cls, name: str, capacity: int) -> "RingBuffer":
        from multiprocessing import shared_memory

        # CPython < 3.13 registers attached segments with the resource
        # tracker as if this process owned them. The tracker cache is a
        # plain set shared with the creator, so unregistering after the
        # fact would cancel the creator's entry — instead suppress the
        # registration itself (3.13+ exposes track=False for this).
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # pragma: no cover - interpreter-dependent
            from multiprocessing import resource_tracker

            original = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original
        return cls(shm, capacity)

    @property
    def name(self) -> str:
        return self.shm.name

    # -- counter access ----------------------------------------------------

    def _load(self, offset: int) -> int:
        return _U64.unpack_from(self.buf, offset)[0]

    def _store(self, offset: int, value: int) -> None:
        _U64.pack_into(self.buf, offset, value)

    def _positions(self) -> tuple[int, int]:
        return self._load(_OFF_WRITE), self._load(_OFF_READ)

    def _generation(self) -> int:
        return self._load(_OFF_GEN)

    def _closed(self) -> bool:
        return bool(self.buf[_OFF_CLOSED])

    def readable(self) -> bool:
        write_pos, read_pos = self._positions()
        return write_pos > read_pos

    def mark_closed(self) -> None:
        self.buf[_OFF_CLOSED] = 1

    # -- raw byte movement -------------------------------------------------

    def _copy_in(self, pos: int, data) -> None:
        at = pos % self.capacity
        first = min(len(data), self.capacity - at)
        base = _HEADER_SIZE
        self.buf[base + at : base + at + first] = data[:first]
        if first < len(data):
            self.buf[base : base + len(data) - first] = data[first:]

    def _copy_out(self, pos: int, count: int) -> bytes:
        at = pos % self.capacity
        first = min(count, self.capacity - at)
        base = _HEADER_SIZE
        out = bytes(self.buf[base + at : base + at + first])
        if first < count:
            out += bytes(self.buf[base : base + count - first])
        return out

    def _wait(self, ready: Callable[[], bool], alive, what: str) -> None:
        for _ in range(_SPIN_ROUNDS):
            if ready():
                return
        sleeps = 0
        while not ready():
            time.sleep(_SLEEP_SECONDS)
            sleeps += 1
            if sleeps % _ALIVE_EVERY == 0:
                if self._closed() or (alive is not None and not alive()):
                    if ready():  # drained concurrently with the probe
                        return
                    raise TransportError(
                        f"ring peer died while {what} "
                        f"(generation {self._generation()})"
                    )

    # -- framing -----------------------------------------------------------

    def send_frame(self, payload: bytes, alive=None) -> None:
        data = _LEN_PREFIX.pack(len(payload)) + payload
        sent = 0
        while sent < len(data):
            write_pos, read_pos = self._positions()
            free = self.capacity - (write_pos - read_pos)
            if free == 0:
                def _space() -> bool:
                    write_pos, read_pos = self._positions()
                    return write_pos - read_pos < self.capacity

                self._wait(_space, alive, "awaiting ring space")
                continue
            chunk = data[sent : sent + free]
            self._copy_in(write_pos, chunk)
            sent += len(chunk)
            # Publish after the payload bytes are in place; only the
            # producer-owned word is touched.
            self._store(_OFF_WRITE, write_pos + len(chunk))
        self._store(_OFF_GEN, self._generation() + 1)

    def _read_exact(self, count: int, alive, what: str) -> bytes:
        out = b""
        while len(out) < count:
            write_pos, read_pos = self._positions()
            available = write_pos - read_pos
            if available == 0:
                self._wait(self.readable, alive, what)
                continue
            take = min(count - len(out), available)
            out += self._copy_out(read_pos, take)
            # Release the bytes; only the consumer-owned word moves.
            self._store(_OFF_READ, read_pos + take)
        return out

    def recv_frame(self, alive=None) -> bytes:
        head = self._read_exact(
            _LEN_PREFIX.size, alive, "awaiting a frame"
        )
        (length,) = _LEN_PREFIX.unpack(head)
        return self._read_exact(length, alive, "awaiting frame body")

    def close(self, unlink: bool = False) -> None:
        self.buf = None
        try:
            self.shm.close()
        except Exception:  # pragma: no cover - double close
            pass
        if unlink:
            try:
                self.shm.unlink()
            except Exception:  # pragma: no cover - already unlinked
                pass


# -- endpoints (the worker-facing half) ------------------------------------


class PipeEndpoint:
    """Frames over one ``multiprocessing`` pipe connection."""

    def __init__(self, conn) -> None:
        self.conn = conn
        self.frames_sent = 0
        self.frames_received = 0

    def send(self, frame: bytes) -> None:
        self.conn.send_bytes(frame)
        self.frames_sent += 1

    def recv(self) -> bytes:
        try:
            frame = self.conn.recv_bytes()
        except EOFError as exc:
            raise TransportError("pipe peer closed") from exc
        self.frames_received += 1
        return frame

    def poll(self, timeout: float = 0.0) -> bool:
        return self.conn.poll(timeout)

    def close(self) -> None:
        self.conn.close()


class ShmEndpoint:
    """Frames over a ring pair: ``rx`` is read, ``tx`` is written."""

    def __init__(self, rx: RingBuffer, tx: RingBuffer, alive=None) -> None:
        self.rx = rx
        self.tx = tx
        self.alive = alive
        self.frames_sent = 0
        self.frames_received = 0

    @classmethod
    def attach(
        cls, rx_name: str, tx_name: str, capacity: int
    ) -> "ShmEndpoint":
        return cls(
            RingBuffer.attach(rx_name, capacity),
            RingBuffer.attach(tx_name, capacity),
        )

    def send(self, frame: bytes) -> None:
        self.tx.send_frame(frame, alive=self.alive)
        self.frames_sent += 1

    def recv(self) -> bytes:
        frame = self.rx.recv_frame(alive=self.alive)
        self.frames_received += 1
        return frame

    def poll(self, timeout: float = 0.0) -> bool:
        if self.rx.readable():
            return True
        if timeout <= 0.0:
            return False
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.rx.readable():
                return True
            time.sleep(_SLEEP_SECONDS)
        return self.rx.readable()

    def close(self, unlink: bool = False) -> None:
        self.rx.close(unlink=unlink)
        self.tx.close(unlink=unlink)



# -- coordinator-side transports -------------------------------------------


class CoordinatorTransport:
    """Coordinator-side frame interface over N workers.

    ``send_frame(rank, frame)`` / ``recv_frame(rank)`` move one frame;
    ``wait_any(ranks)`` blocks until at least one of the given ranks
    has a frame pending and returns the readable subset (in rank
    order, so the coordinator's processing order is deterministic).
    """

    endpoints: list

    @property
    def frames_sent(self) -> int:
        return sum(e.frames_sent for e in self.endpoints)

    @property
    def frames_received(self) -> int:
        return sum(e.frames_received for e in self.endpoints)

    def send_frame(self, rank: int, frame: bytes) -> None:
        self.endpoints[rank].send(frame)

    def recv_frame(self, rank: int) -> bytes:
        return self.endpoints[rank].recv()

    def poll(self, rank: int) -> bool:
        return self.endpoints[rank].poll()


class PipeTransport(CoordinatorTransport):
    """One mp child per rank, one pipe per child."""

    name = "pipe"

    def __init__(self, plan_n: int, spawn) -> None:
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context()
        self.endpoints = []
        self.procs = []
        for rank in range(plan_n):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=spawn, args=(("pipe", child), rank), daemon=True
            )
            proc.start()
            child.close()
            self.endpoints.append(PipeEndpoint(parent))
            self.procs.append(proc)

    def wait_any(self, ranks: list[int]) -> list[int]:
        from multiprocessing.connection import wait

        conns = {self.endpoints[r].conn: r for r in ranks}
        while True:
            ready = wait(list(conns), timeout=1.0)
            if ready:
                return sorted(conns[c] for c in ready)
            for rank in ranks:
                if not self.procs[rank].is_alive():
                    raise TransportError(
                        f"worker {rank} died without a reply"
                    )

    def close(self) -> None:
        for endpoint in self.endpoints:
            try:
                endpoint.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for proc in self.procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hang guard
                proc.terminate()


class ShmTransport(CoordinatorTransport):
    """One mp child per rank, one shared-memory ring pair per child."""

    name = "shm"

    def __init__(
        self,
        plan_n: int,
        spawn,
        ring_bytes: int = DEFAULT_RING_BYTES,
    ) -> None:
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context()
        self.endpoints = []
        self.procs = []
        self._rings: list[RingBuffer] = []
        for rank in range(plan_n):
            to_worker = RingBuffer.create(ring_bytes)
            to_coord = RingBuffer.create(ring_bytes)
            self._rings += [to_worker, to_coord]
            proc = ctx.Process(
                target=spawn,
                args=(
                    ("shm", to_worker.name, to_coord.name, ring_bytes),
                    rank,
                ),
                daemon=True,
            )
            proc.start()
            endpoint = ShmEndpoint(rx=to_coord, tx=to_worker)
            endpoint.alive = proc.is_alive
            self.endpoints.append(endpoint)
            self.procs.append(proc)

    def wait_any(self, ranks: list[int]) -> list[int]:
        spins = 0
        while True:
            ready = [r for r in ranks if self.endpoints[r].rx.readable()]
            if ready:
                return ready
            spins += 1
            if spins > _SPIN_ROUNDS:
                time.sleep(_SLEEP_SECONDS)
                if spins % (_SPIN_ROUNDS + _ALIVE_EVERY) == 0:
                    for rank in ranks:
                        if not self.procs[rank].is_alive():
                            if self.endpoints[rank].rx.readable():
                                continue
                            raise TransportError(
                                f"worker {rank} died without a reply "
                                "(generation "
                                f"{self.endpoints[rank].rx._generation()})"
                            )

    def close(self) -> None:
        for endpoint in self.endpoints:
            endpoint.tx.mark_closed()
        for proc in self.procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hang guard
                proc.terminate()
        for ring in self._rings:
            ring.close(unlink=True)


def connect_endpoint(descriptor) -> object:
    """Child-process side: turn the spawn descriptor into an endpoint."""
    kind = descriptor[0]
    if kind == "pipe":
        return PipeEndpoint(descriptor[1])
    if kind == "shm":
        _kind, rx_name, tx_name, capacity = descriptor
        return ShmEndpoint.attach(rx_name, tx_name, capacity)
    raise SimulationError(f"unknown endpoint descriptor {kind!r}")
