"""Topology partitioning for the sharded simulator.

The partitioner assigns every node to one of ``n`` partitions so that

* the source's node lands in partition 0 (rank 0 drives the workload's
  data plane and is the natural coordinator anchor);
* partitions are balanced (each within one "growth round" of
  ``ceil(|V| / n)`` nodes); and
* the number of *cut links* — links whose endpoints live in different
  partitions — is small, because every cut link costs serialization
  and bounds the conservative-sync lookahead.

The algorithm is deterministic (sorted-name tie-breaks throughout):
seeds are picked farthest-first by hop count starting from the source,
partitions grow in round-robin BFS waves from their seeds, then a
boundary-refinement pass moves nodes whose neighbors mostly live in an
adjacent partition, provided the move strictly reduces the cut and
keeps sizes within slack.

The resulting :class:`PartitionPlan` also carries the conservative-sync
inputs: the cut-link list and the pairwise lookahead matrix
``min_delay[(src_rank, dst_rank)]`` — the smallest propagation delay of
any cut link from one partition toward another, which is exactly how
far a partition can safely run past its predecessors' clocks. Zero
cut-link delays are rejected: a zero-delay cut has no lookahead and the
conservative protocol would deadlock (or degrade to lockstep).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from math import ceil, inf
from typing import TYPE_CHECKING, Optional

from repro.errors import TopologyError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.topology import Topology


@dataclass
class PartitionPlan:
    """The output of :func:`plan_partitions`."""

    #: Node-name sets, indexed by rank; rank 0 contains the source.
    parts: list[set[str]]
    #: node name -> owning rank.
    owner: dict[str, int]
    #: Sorted (a, b, delay) triples for links crossing the cut.
    cut_links: list[tuple[str, str, float]]
    #: (src_rank, dst_rank) -> min propagation delay of any cut link in
    #: that direction (the lookahead); absent pairs have no direct link.
    lookahead: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return len(self.parts)

    def rank_of(self, node: str) -> int:
        return self.owner[node]

    def min_lookahead(self) -> float:
        """The smallest cut delay — the sync protocol's step size."""
        return min(self.lookahead.values(), default=inf)

    def summary(self) -> dict:
        return {
            "partitions": self.n,
            "sizes": [len(p) for p in self.parts],
            "cut_links": len(self.cut_links),
            "min_lookahead": self.min_lookahead(),
        }


def _adjacency(topo: "Topology") -> dict[str, list[str]]:
    adj: dict[str, list[str]] = {name: [] for name in topo.nodes}
    for link in topo.links:
        adj[link.node_a.name].append(link.node_b.name)
        adj[link.node_b.name].append(link.node_a.name)
    for name in adj:
        adj[name].sort()
    return adj


def _bfs_hops(adj: dict[str, list[str]], seeds: list[str]) -> dict[str, int]:
    dist = {s: 0 for s in seeds}
    queue = deque(seeds)
    while queue:
        here = queue.popleft()
        for neighbor in adj[here]:
            if neighbor not in dist:
                dist[neighbor] = dist[here] + 1
                queue.append(neighbor)
    return dist


def _pick_seeds(adj: dict[str, list[str]], source: str, n: int) -> list[str]:
    """Farthest-first seeds: the source, then repeatedly the node with
    the greatest hop distance to every chosen seed (ties by name)."""
    seeds = [source]
    while len(seeds) < n:
        dist = _bfs_hops(adj, seeds)
        best: Optional[str] = None
        best_key = (-1, "")
        for name in sorted(adj):
            if name in seeds:
                continue
            key = (dist.get(name, len(adj)), name)
            # Max distance, then lexicographically smallest name. The
            # name enters the key negated via comparison order below.
            if key[0] > best_key[0] or (key[0] == best_key[0] and key[1] < best_key[1]):
                best, best_key = name, key
        if best is None:  # fewer nodes than partitions
            break
        seeds.append(best)
    return seeds


def _claim_one(
    adj: dict[str, list[str]],
    owner: dict[str, int],
    frontier: deque,
    rank: int,
    sizes: list[int],
) -> bool:
    """Claim one unowned node adjacent to ``rank``'s region (BFS
    order). Returns False when the frontier is exhausted."""
    while frontier:
        here = frontier[0]
        for neighbor in adj[here]:
            if neighbor not in owner:
                owner[neighbor] = rank
                sizes[rank] += 1
                frontier.append(neighbor)
                return True
        frontier.popleft()
    return False


def _grow(adj: dict[str, list[str]], seeds: list[str], cap: int) -> dict[str, int]:
    """Balanced region growing: repeatedly expand the currently
    *smallest* partition by a single node (BFS order within each
    region, ties by rank). Size balance is enforced continuously, not
    per wave — per-partition load bounds the sharded run's speedup, so
    a partition must never race ahead and enclose its peers. ``cap``
    is respected while any under-cap region can still grow, then
    relaxed so every reachable node ends up owned."""
    owner: dict[str, int] = {}
    frontiers: list[deque[str]] = []
    sizes = [0] * len(seeds)
    for rank, seed in enumerate(seeds):
        owner[seed] = rank
        sizes[rank] = 1
        frontiers.append(deque([seed]))
    for limit in (cap, len(adj)):  # capped pass, then cap-relaxed
        growable = set(range(len(seeds)))
        while growable:
            rank = min(growable, key=lambda r: (sizes[r], r))
            if sizes[rank] >= limit or not _claim_one(
                adj, owner, frontiers[rank], rank, sizes
            ):
                growable.discard(rank)
    for name in sorted(n for n in adj if n not in owner):
        # Disconnected from every seed -> smallest partition.
        rank = min(range(len(seeds)), key=lambda r: (sizes[r], r))
        owner[name] = rank
        sizes[rank] += 1
    return owner


def _refine(
    adj: dict[str, list[str]], owner: dict[str, int], n: int, cap: int, passes: int = 4
) -> None:
    """Boundary refinement: move a node to a neighboring partition when
    that strictly reduces its external degree (the cut), without
    emptying its partition or blowing the size slack."""
    sizes = [0] * n
    for rank in owner.values():
        sizes[rank] += 1
    slack = cap + 1
    for _ in range(passes):
        moved = False
        for name in sorted(owner):
            here = owner[name]
            if sizes[here] <= 1:
                continue
            tallies: dict[int, int] = {}
            for neighbor in adj[name]:
                rank = owner[neighbor]
                tallies[rank] = tallies.get(rank, 0) + 1
            internal = tallies.get(here, 0)
            best_rank, best_tally = here, internal
            for rank in sorted(tallies):
                if rank == here or sizes[rank] >= slack:
                    continue
                if tallies[rank] > best_tally:
                    best_rank, best_tally = rank, tallies[rank]
            if best_rank != here:
                owner[name] = best_rank
                sizes[here] -= 1
                sizes[best_rank] += 1
                moved = True
        if not moved:
            break


def _rebalance(adj: dict[str, list[str]], owner: dict[str, int], n: int) -> None:
    """Water-filling rebalance: while some partition outweighs another
    by 2+ nodes, move one boundary node from the heaviest such
    partition into an adjacent lighter one, preferring the move that
    most improves (or least damages) the cut. Growth can leave a seed
    region *enclosed* — its frontier dead at a handful of nodes while a
    neighbor swallows the rest of the graph — and per-partition load
    bounds the sharded run's speedup, so balance wins over cut size.
    Each move strictly shrinks the size spread, so this terminates."""
    sizes = [0] * n
    for rank in owner.values():
        sizes[rank] += 1
    while True:
        best = None
        for name in sorted(owner):
            here = owner[name]
            if sizes[here] <= 1:
                continue
            tallies: dict[int, int] = {}
            for neighbor in adj[name]:
                rank = owner[neighbor]
                tallies[rank] = tallies.get(rank, 0) + 1
            for rank in sorted(tallies):
                if rank == here or sizes[rank] > sizes[here] - 2:
                    continue
                gain = tallies[rank] - tallies.get(here, 0)
                key = (sizes[here] - sizes[rank], gain, -sizes[rank])
                if best is None or key > best[0]:
                    best = (key, name, rank)
        if best is None:
            return
        _key, name, rank = best
        sizes[owner[name]] -= 1
        owner[name] = rank
        sizes[rank] += 1


def plan_partitions(topo: "Topology", n: int, source: str) -> PartitionPlan:
    """Partition ``topo`` into ``n`` shards with ``source`` in rank 0.

    Raises :class:`TopologyError` for an invalid ``n``, an unknown
    source, or a cut that includes a zero-delay link (no lookahead —
    the conservative protocol cannot make progress across it).
    """
    if n < 1:
        raise TopologyError(f"need at least 1 partition, got {n}")
    if source not in topo.nodes:
        raise TopologyError(f"unknown source node {source!r}")
    n = min(n, len(topo.nodes))
    adj = _adjacency(topo)
    if n == 1:
        owner = {name: 0 for name in topo.nodes}
    else:
        cap = ceil(len(topo.nodes) / n)
        seeds = _pick_seeds(adj, source, n)
        owner = _grow(adj, seeds, cap)
        _refine(adj, owner, len(seeds), cap)
        _rebalance(adj, owner, len(seeds))
        # Seeds may have migrated during refinement; re-anchor the
        # source's partition as rank 0 by swapping labels.
        src_rank = owner[source]
        if src_rank != 0:
            for name, rank in owner.items():
                if rank == src_rank:
                    owner[name] = 0
                elif rank == 0:
                    owner[name] = src_rank
        n = len(seeds)
    parts: list[set[str]] = [set() for _ in range(n)]
    for name, rank in owner.items():
        parts[rank].add(name)
    cut_links: list[tuple[str, str, float]] = []
    lookahead: dict[tuple[int, int], float] = {}
    for link in topo.links:
        a, b = link.node_a.name, link.node_b.name
        ra, rb = owner[a], owner[b]
        if ra == rb:
            continue
        if link.delay <= 0.0:
            raise TopologyError(
                f"cut link {a}<->{b} has zero delay: no lookahead for "
                "conservative sync (re-partition or give the link delay)"
            )
        cut_links.append((a, b, link.delay))
        for direction in ((ra, rb), (rb, ra)):
            current = lookahead.get(direction, inf)
            lookahead[direction] = min(current, link.delay)
    cut_links.sort()
    return PartitionPlan(parts=parts, owner=owner, cut_links=cut_links, lookahead=lookahead)
