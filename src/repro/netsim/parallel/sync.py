"""Conservative-lookahead synchronization (null messages / LBTS).

The coordinator runs Chandy–Misra–Bryant-style rounds over the
partition graph. Every round, each worker reports its *next effective
event time* — the earliest timestamp it could dispatch, accounting for
both its local queue and any imports the coordinator is still holding
for it. The coordinator then hands each worker a horizon

    H_w = min over predecessors q of (next_eff_q + L[q -> w])

where ``L[q -> w]`` is the smallest propagation delay of any cut link
from partition q toward w: nothing q dispatches at or after
``next_eff_q`` can arrive in w before ``next_eff_q + L``, so w may
dispatch every event strictly below ``H_w`` without risk of a
causality violation. Workers run exclusive-horizon windows
(``Simulator.run(until=H, inclusive=False)``), export cut-crossing
packets, and the round repeats. Because every cut delay is positive,
the global minimum next-event time strictly increases each round and
the protocol cannot deadlock.

These per-report announcements *are* the null messages of the CMB
protocol — a worker with nothing to send still advances its neighbors'
horizons by reporting its clock plus lookahead.

Two sync modes share this math. ``eager`` is the lockstep baseline
described above: every worker, every round, one window per grant.
``demand`` cuts the message tax: each worker gets a grant *ceiling*

    G_w = min over q != w of (next_eff_q + Lc[q -> w])

over the transitive closure — deliberately excluding the self-echo
diagonal term, because the worker enforces that bound itself: it
drains multiple windows ``[s, min(G_w, s + Lc[w, w]))`` locally (s =
its next pending event time) and reports back only when the ceiling is
exhausted or it exports a cut-crossing packet. Any export at time
``t >= s`` can echo back no earlier than ``t + Lc[w, w] >= s +
Lc[w, w]``, which is at or past the window end — so no window ever
overruns the knowledge the worker had when granted, and stopping at
the first export keeps the null messages demand-driven: quiet shards
simply are not granted (no heartbeats), and a report almost always
carries payload. The rung ladder a grant carries is the projection of
those windows from the worker's reported next-k event times — the
worker recomputes the real windows from live peeks (new events created
mid-grant only tighten them), the coordinator records the ladder in
:class:`RoundTrace` for post-mortems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from typing import Optional


#: Order in which phase fractions are reported everywhere (docs, bench
#: schema, Prometheus gauges): event execution, scheduler bookkeeping,
#: event construction/recycling outside run windows, metrics
#: flush/snapshot time, blocking on the coordinator pipe, everything
#: else.
PHASES = ("dispatch", "cascade", "alloc", "accounting", "sync_wait", "idle")


@dataclass
class SyncStats:
    """Per-worker sync counters (picklable; mirrored into the obs
    registry as ``parallel_*`` families when observability is on).

    The ``wall_*`` fields are phase accounting, populated only when the
    worker runs with profiling enabled. They are deliberately *not*
    part of :meth:`as_dict`: that dict is compared across transports
    and runs by the determinism tests, and wall clocks measure the
    machine, not the protocol.
    """

    rank: int = 0
    null_messages: int = 0
    lbts_stalls: int = 0
    sync_rounds: int = 0
    #: Exclusive-horizon simulator windows run. Equal to
    #: ``sync_rounds`` in eager mode; larger under demand-driven
    #: grants, where one grant drains several windows.
    windows: int = 0
    #: Protocol frames this worker sent/received (grants, reports,
    #: ready/result/exit — everything on its endpoint). Deterministic
    #: for a given spec and sync mode, identical across transports.
    frames_sent: int = 0
    frames_received: int = 0
    proxy_packets_out: int = 0
    proxy_bytes_out: int = 0
    proxy_packets_in: int = 0
    proxy_bytes_in: int = 0
    wall_dispatch: float = 0.0
    wall_cascade: float = 0.0
    wall_alloc: float = 0.0
    wall_accounting: float = 0.0
    wall_sync_wait: float = 0.0
    wall_total: float = 0.0
    events_dispatched: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "rank": self.rank,
            "null_messages": self.null_messages,
            "lbts_stalls": self.lbts_stalls,
            "sync_rounds": self.sync_rounds,
            "windows": self.windows,
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "proxy_packets_out": self.proxy_packets_out,
            "proxy_bytes_out": self.proxy_bytes_out,
            "proxy_packets_in": self.proxy_packets_in,
            "proxy_bytes_in": self.proxy_bytes_in,
        }

    @property
    def null_message_ratio(self) -> float:
        """Fraction of reports that were pure clock announcements —
        neither exports nor dispatched work (the literal CMB null
        message)."""
        return self.null_messages / self.sync_rounds if self.sync_rounds else 0.0

    def phase_seconds(self) -> dict[str, float]:
        """Absolute wall seconds per phase. ``idle`` is the remainder
        of ``wall_total`` not attributed to any measured phase (barrier
        skew, result extraction, pipe sends)."""
        measured = (
            self.wall_dispatch + self.wall_cascade + self.wall_alloc
            + self.wall_accounting + self.wall_sync_wait
        )
        return {
            "dispatch": self.wall_dispatch,
            "cascade": self.wall_cascade,
            "alloc": self.wall_alloc,
            "accounting": self.wall_accounting,
            "sync_wait": self.wall_sync_wait,
            "idle": max(0.0, self.wall_total - measured),
        }

    def phase_breakdown(self) -> dict[str, float]:
        """Phase fractions of ``wall_total`` (sum ~1.0 when profiled)."""
        total = self.wall_total
        if total <= 0.0:
            return {phase: 0.0 for phase in PHASES}
        return {
            phase: seconds / total
            for phase, seconds in self.phase_seconds().items()
        }

    def events_per_second(self) -> float:
        """Dispatched events per wall second of the worker's run."""
        return (
            self.events_dispatched / self.wall_total
            if self.wall_total > 0.0
            else 0.0
        )


def merge_sync_stats(stats: list[SyncStats]) -> dict[str, int]:
    """Fleet totals across workers (ranks dropped)."""
    totals = {
        "null_messages": 0,
        "lbts_stalls": 0,
        "sync_rounds": 0,
        "windows": 0,
        "frames_sent": 0,
        "frames_received": 0,
        "proxy_packets": 0,
        "proxy_bytes": 0,
    }
    for s in stats:
        totals["null_messages"] += s.null_messages
        totals["lbts_stalls"] += s.lbts_stalls
        totals["sync_rounds"] += s.sync_rounds
        totals["windows"] += s.windows
        totals["frames_sent"] += s.frames_sent
        totals["frames_received"] += s.frames_received
        totals["proxy_packets"] += s.proxy_packets_out
        totals["proxy_bytes"] += s.proxy_bytes_out
    return totals


def message_stats(stats: list[SyncStats], events: int) -> dict[str, float]:
    """Host-independent sync-message economics.

    ``sync_messages_per_event`` — total protocol frames the fleet
    moved (both directions) per dispatched event: the metric the
    multi-window/demand-driven work is gated on, meaningful even on
    ``cores_limited`` hosts where wall-clock speedup is not.
    ``frames_per_round`` — frames per sync round (grant + report + any
    control traffic amortized); eager mode sits at ~2, coalescing
    keeps demand mode there too while rounds themselves collapse.
    """
    frames = sum(s.frames_sent + s.frames_received for s in stats)
    rounds = sum(s.sync_rounds for s in stats)
    return {
        "frames_total": frames,
        "sync_messages_per_event": frames / events if events else 0.0,
        "frames_per_round": frames / rounds if rounds else 0.0,
    }


def merge_phase_stats(stats: list[SyncStats]) -> dict:
    """Fleet-level phase accounting, weighted by worker wall time.

    The fractions answer "where did the fleet's worker-seconds go" —
    each worker contributes to a phase in proportion to the absolute
    wall time it spent there, so a shard that ran twice as long weighs
    twice as much. ``sync_efficiency`` is the *productive* share —
    dispatch + cascade + alloc + accounting: the fraction of worker
    wall time spent doing simulation work (including the native core's
    event setup and counter flushing) rather than waiting on the sync
    protocol (the bench floor gate's signal). Only ``sync_wait`` and
    ``idle`` count against it.
    """
    total = sum(s.wall_total for s in stats)
    seconds = {phase: 0.0 for phase in PHASES}
    for s in stats:
        for phase, value in s.phase_seconds().items():
            seconds[phase] += value
    breakdown = {
        phase: (value / total if total > 0.0 else 0.0)
        for phase, value in seconds.items()
    }
    rounds = sum(s.sync_rounds for s in stats)
    nulls = sum(s.null_messages for s in stats)
    return {
        "phase_breakdown": breakdown,
        "phase_seconds": seconds,
        "wall_total": total,
        "null_message_ratio": nulls / rounds if rounds else 0.0,
        "sync_efficiency": (
            breakdown["dispatch"]
            + breakdown["cascade"]
            + breakdown["alloc"]
            + breakdown["accounting"]
        ),
        "events_per_second": {
            s.rank: s.events_per_second() for s in stats
        },
    }


def effective_next_times(
    reported: list[float], pending_import_min: list[float]
) -> list[float]:
    """Fold pending (undelivered) imports into each worker's report.

    A worker's own queue does not know about packets the coordinator
    is still holding for it; using the raw report would let a
    predecessor's horizon race past an import that is about to land —
    a causality violation. ``pending_import_min[w]`` is the earliest
    arrival time among held imports destined to w (``inf`` if none).
    """
    return [min(r, p) for r, p in zip(reported, pending_import_min)]


def transitive_lookahead(
    lookahead: dict[tuple[int, int], float], n: int
) -> dict[tuple[int, int], float]:
    """All-pairs minimum lookahead over the partition graph.

    Direct cut delays alone are *not* a safe horizon input: influence
    propagates transitively (q exports to r, whose reaction exports to
    w), and an idle intermediate partition reports ``next_eff = inf``
    — which would unbound w's horizon even though q's next event can
    reach w in ``L[q->r] + L[r->w]``. Floyd–Warshall over the cut
    delays gives the true minimum delay along *any* partition path,
    including the diagonal ``(w, w)``: the shortest cycle through the
    cut bounds how soon a worker's own dispatches can echo back to it,
    which must also cap its horizon. Computed once per plan (the
    partition count is tiny).
    """
    dist = [[inf] * n for _ in range(n)]
    for (src, dst), delay in lookahead.items():
        if delay < dist[src][dst]:
            dist[src][dst] = delay
    for mid in range(n):
        row_mid = dist[mid]
        for src in range(n):
            through = dist[src][mid]
            if through == inf:
                continue
            row_src = dist[src]
            for dst in range(n):
                candidate = through + row_mid[dst]
                if candidate < row_src[dst]:
                    row_src[dst] = candidate
    return {
        (src, dst): dist[src][dst]
        for src in range(n)
        for dst in range(n)
        if dist[src][dst] < inf
    }


def compute_horizons(
    next_eff: list[float],
    lookahead: dict[tuple[int, int], float],
    until: Optional[float] = None,
) -> list[float]:
    """Per-worker dispatch horizons for one round.

    ``next_eff[q]`` is worker q's effective next event time;
    ``lookahead[(q, w)]`` the min delay from q toward w — pass the
    :func:`transitive_lookahead` closure, not the raw per-cut-link
    matrix, so multi-hop influence and self-echo cycles bound the
    horizon too. A worker no partition can reach gets ``inf`` —
    nothing external can ever affect it, so it may run to the end of
    simulated time. ``until`` (the scenario end) caps nothing here;
    callers compare horizons against it to decide when a worker can
    take its final inclusive window. Horizons are monotonically
    nondecreasing across rounds because every ``next_eff`` is
    nondecreasing and lookaheads are fixed.
    """
    n = len(next_eff)
    horizons = [inf] * n
    for (src, dst), delay in lookahead.items():
        bound = next_eff[src] + delay
        if bound < horizons[dst]:
            horizons[dst] = bound
    return horizons


def grant_ceilings(
    next_eff: list[float], lookahead: dict[tuple[int, int], float]
) -> list[float]:
    """Per-worker grant ceilings for demand-driven sync.

    Like :func:`compute_horizons` but *excluding* the diagonal
    ``(w, w)`` closure term: the self-echo bound depends on the
    worker's own future dispatch times, which only the worker knows
    mid-grant — so it enforces that bound itself by capping each
    internal window at ``s + Lc[w, w]`` and stopping at the first
    export. Everything the coordinator can soundly promise from the
    *other* workers' effective next times is in the ceiling. Cached
    (possibly stale) reports are safe inputs: a worker's dispatch
    times only move forward, so an old report is still a lower bound.
    """
    n = len(next_eff)
    ceilings = [inf] * n
    for (src, dst), delay in lookahead.items():
        if src == dst:
            continue
        bound = next_eff[src] + delay
        if bound < ceilings[dst]:
            ceilings[dst] = bound
    return ceilings


def build_ladder(
    next_times: list[float], self_delay: float, ceiling: float
) -> list[float]:
    """The horizon rungs a demand grant carries: the projection of the
    worker's export-capped windows from its reported next-k event
    times. Rung i is ``min(ceiling, next_times[i] + self_delay)``;
    rungs are deduped ascending and the final rung is always the
    ceiling, so ``ladder[-1]`` is the authoritative bound and the
    earlier rungs are the predicted intermediate window ends (recorded
    in :class:`RoundTrace`; the worker recomputes the real windows
    from live peeks, which new mid-grant events can only tighten)."""
    rungs: list[float] = []
    for when in next_times:
        rung = when + self_delay
        if rung >= ceiling:
            break
        if not rungs or rung > rungs[-1]:
            rungs.append(rung)
    rungs.append(ceiling)
    return rungs


@dataclass
class RoundTrace:
    """One coordinator scheduling round, for the sync unit tests,
    flight-recorder dumps, and ``repro.obs diff`` post-mortems."""

    round_index: int
    next_eff: list[float] = field(default_factory=list)
    horizons: list[float] = field(default_factory=list)
    exports: int = 0
    #: Rank -> granted horizon ladder this round (demand mode; eager
    #: grants are single-rung ladders).
    ladders: dict[int, list[float]] = field(default_factory=dict)
    #: Protocol frames exchanged this round (grants + reports).
    frames: int = 0
    mode: str = "eager"

    def as_dict(self) -> dict:
        """JSON-safe record (inf encoded as None for jsonl dumps)."""

        def scrub(value):
            if isinstance(value, float) and value == inf:
                return None
            return value

        return {
            "round_index": self.round_index,
            "next_eff": [scrub(v) for v in self.next_eff],
            "horizons": [scrub(v) for v in self.horizons],
            "exports": self.exports,
            "ladders": {
                str(rank): [scrub(v) for v in ladder]
                for rank, ladder in self.ladders.items()
            },
            "frames": self.frames,
            "mode": self.mode,
        }
