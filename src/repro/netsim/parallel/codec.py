"""Serialization of :class:`~repro.netsim.packet.Packet` across the cut.

Packets crossing partition boundaries travel between worker processes
as bytes. The fixed fields pack into a small struct header; the
``ecmp`` header — the message object the protocol put on the packet —
is serialized with the *real* ECMP wire codec
(:func:`repro.core.ecmp.messages.encode_message`), so coalesced
TCP-mode batches cross the cut as genuine ``MSG_BATCH`` frames and the
sharded simulator exercises the same encode/decode paths as a
``wire_format=True`` run. Everything the struct layout cannot express
(non-ECMP payloads, tracer span contexts, encapsulated packets) falls
back to pickle, flagged so decode knows which path to take.

``created_at`` is preserved exactly — delivery-latency histograms are
part of the equivalence contract with the single-process oracle.
``uid`` is *not* preserved: it is a debugging identity local to one
process's packet counter, and nothing in the protocol keys on it.
"""

from __future__ import annotations

import pickle
import struct

from repro.core.ecmp.messages import decode_message, encode_message
from repro.errors import CodecError
from repro.netsim.packet import Packet

#: src(4) dst(4) ttl(2) flags(1) proto-len(1) size(4) created_at(8)
#: ecmp-len(4) extra-len(4)
_HEAD = struct.Struct("!IIHBBId II")

_FLAG_RELIABLE = 0x01
_FLAG_ECMP = 0x02
#: The ``ecmp`` header already held wire bytes (a ``wire_format=True``
#: network); pass them through instead of re-encoding.
_FLAG_ECMP_RAW = 0x04
_FLAG_EXTRA = 0x08


def encode_packet(packet: Packet) -> bytes:
    """Serialize ``packet`` (fields, headers, payload) to bytes."""
    flags = 0
    headers = dict(packet.headers)
    if headers.pop("reliable", False):
        flags |= _FLAG_RELIABLE
    ecmp_bytes = b""
    message = headers.pop("ecmp", None)
    if message is not None:
        flags |= _FLAG_ECMP
        if isinstance(message, (bytes, bytearray)):
            flags |= _FLAG_ECMP_RAW
            ecmp_bytes = bytes(message)
        else:
            ecmp_bytes = encode_message(message)
    extra = b""
    if headers or packet.payload is not None:
        flags |= _FLAG_EXTRA
        extra = pickle.dumps((headers, packet.payload), protocol=pickle.HIGHEST_PROTOCOL)
    proto = packet.proto.encode("ascii")
    if len(proto) > 0xFF:
        raise CodecError(f"proto label too long: {packet.proto!r}")
    head = _HEAD.pack(
        packet.src,
        packet.dst,
        packet.ttl,
        flags,
        len(proto),
        packet.size,
        packet.created_at,
        len(ecmp_bytes),
        len(extra),
    )
    return head + proto + ecmp_bytes + extra


def decode_packet(data: bytes) -> Packet:
    """Parse bytes from :func:`encode_packet` back into a packet.

    Strict like the ECMP codec: short buffers and trailing bytes are a
    :class:`CodecError`, never a silent truncation.
    """
    if len(data) < _HEAD.size:
        raise CodecError(f"packet truncated: {len(data)} bytes")
    src, dst, ttl, flags, proto_len, size, created_at, ecmp_len, extra_len = _HEAD.unpack(
        data[: _HEAD.size]
    )
    expected = _HEAD.size + proto_len + ecmp_len + extra_len
    if len(data) != expected:
        raise CodecError(f"packet framing: {len(data)} bytes, expected {expected}")
    at = _HEAD.size
    proto = data[at : at + proto_len].decode("ascii")
    at += proto_len
    headers: dict = {}
    payload = None
    if flags & _FLAG_ECMP:
        raw = data[at : at + ecmp_len]
        headers["ecmp"] = bytes(raw) if flags & _FLAG_ECMP_RAW else decode_message(raw)
    at += ecmp_len
    if flags & _FLAG_EXTRA:
        extra_headers, payload = pickle.loads(data[at : at + extra_len])
        headers.update(extra_headers)
    if flags & _FLAG_RELIABLE:
        headers["reliable"] = True
    return Packet(
        src=src,
        dst=dst,
        proto=proto,
        payload=payload,
        size=size,
        ttl=ttl,
        headers=headers,
        created_at=created_at,
    )
