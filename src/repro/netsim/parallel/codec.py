"""Serialization of :class:`~repro.netsim.packet.Packet` across the cut.

Packets crossing partition boundaries travel between worker processes
as bytes. The fixed fields pack into a small struct header; the
``ecmp`` header — the message object the protocol put on the packet —
is serialized with the *real* ECMP wire codec
(:func:`repro.core.ecmp.messages.encode_message`), so coalesced
TCP-mode batches cross the cut as genuine ``MSG_BATCH`` frames and the
sharded simulator exercises the same encode/decode paths as a
``wire_format=True`` run. Tracer span contexts (the ``spanctx`` header
instrumented runs put on every control message) travel in a compact
struct block — kind(1) count(2), then per entry present(1) +
trace_id(8) span_id(8) — so cross-shard trace stitching costs 17 bytes
per context instead of a pickle blob, and the wire format stays
inspectable. Everything else the struct layout cannot express
(non-ECMP payloads, encapsulated packets) falls back to pickle,
flagged so decode knows which path to take.

``created_at`` is preserved exactly — delivery-latency histograms are
part of the equivalence contract with the single-process oracle.
``uid`` is *not* preserved: it is a debugging identity local to one
process's packet counter, and nothing in the protocol keys on it.
"""

from __future__ import annotations

import pickle
import struct

from repro.core.ecmp.messages import decode_message, encode_message
from repro.errors import CodecError
from repro.netsim.packet import Packet
from repro.obs.hooks import SPAN_HEADER
from repro.obs.tracing import SpanContext

#: src(4) dst(4) ttl(2) flags(1) proto-len(1) size(4) created_at(8)
#: ecmp-len(4) extra-len(4) span-len(2)
_HEAD = struct.Struct("!IIHBBId IIH")

_FLAG_RELIABLE = 0x01
_FLAG_ECMP = 0x02
#: The ``ecmp`` header already held wire bytes (a ``wire_format=True``
#: network); pass them through instead of re-encoding.
_FLAG_ECMP_RAW = 0x04
_FLAG_EXTRA = 0x08
#: A trace context (or an aligned list of them, for batch frames) rides
#: in the compact span block instead of the pickle fallback.
_FLAG_SPANCTX = 0x10

#: One span-block entry body: trace_id(8) span_id(8). Shard-namespaced
#: ids (see :func:`repro.obs.tracing.shard_id_base`) fit u64 comfortably.
_SPAN_CTX = struct.Struct("!QQ")
_SPAN_BLOCK_HEAD = struct.Struct("!BH")  # kind(1) count(2)
_SPANCTX_SINGLE = 1
_SPANCTX_LIST = 2


def _encode_spanctx(value) -> bytes:
    """Compact encoding of the ``spanctx`` header: a single
    :class:`SpanContext` or a list of optional contexts aligned with a
    batch frame's records (None entries marked absent)."""
    if isinstance(value, SpanContext):
        kind, entries = _SPANCTX_SINGLE, [value]
    else:
        kind, entries = _SPANCTX_LIST, list(value)
    parts = [_SPAN_BLOCK_HEAD.pack(kind, len(entries))]
    for ctx in entries:
        if ctx is None:
            parts.append(b"\x00")
        else:
            parts.append(b"\x01" + _SPAN_CTX.pack(ctx.trace_id, ctx.span_id))
    return b"".join(parts)


def _decode_spanctx(data: bytes):
    if len(data) < _SPAN_BLOCK_HEAD.size:
        raise CodecError(f"span block truncated: {len(data)} bytes")
    kind, count = _SPAN_BLOCK_HEAD.unpack(data[: _SPAN_BLOCK_HEAD.size])
    if kind not in (_SPANCTX_SINGLE, _SPANCTX_LIST):
        raise CodecError(f"unknown span block kind {kind}")
    at = _SPAN_BLOCK_HEAD.size
    entries = []
    for _ in range(count):
        if at >= len(data):
            raise CodecError("span block truncated mid-entry")
        present = data[at]
        at += 1
        if present:
            if at + _SPAN_CTX.size > len(data):
                raise CodecError("span block truncated mid-context")
            trace_id, span_id = _SPAN_CTX.unpack(data[at : at + _SPAN_CTX.size])
            at += _SPAN_CTX.size
            entries.append(SpanContext(trace_id, span_id))
        else:
            entries.append(None)
    if at != len(data):
        raise CodecError(f"span block framing: {len(data)} bytes, expected {at}")
    if kind == _SPANCTX_SINGLE:
        if len(entries) != 1 or entries[0] is None:
            raise CodecError("single span block must carry exactly one context")
        return entries[0]
    return entries


def encode_packet(packet: Packet) -> bytes:
    """Serialize ``packet`` (fields, headers, payload) to bytes."""
    flags = 0
    headers = dict(packet.headers)
    if headers.pop("reliable", False):
        flags |= _FLAG_RELIABLE
    ecmp_bytes = b""
    message = headers.pop("ecmp", None)
    if message is not None:
        flags |= _FLAG_ECMP
        if isinstance(message, (bytes, bytearray)):
            flags |= _FLAG_ECMP_RAW
            ecmp_bytes = bytes(message)
        else:
            ecmp_bytes = encode_message(message)
    span_bytes = b""
    spanctx = headers.pop(SPAN_HEADER, None)
    if spanctx is not None:
        flags |= _FLAG_SPANCTX
        span_bytes = _encode_spanctx(spanctx)
        if len(span_bytes) > 0xFFFF:
            raise CodecError(f"span block too large: {len(span_bytes)} bytes")
    extra = b""
    if headers or packet.payload is not None:
        flags |= _FLAG_EXTRA
        extra = pickle.dumps((headers, packet.payload), protocol=pickle.HIGHEST_PROTOCOL)
    proto = packet.proto.encode("ascii")
    if len(proto) > 0xFF:
        raise CodecError(f"proto label too long: {packet.proto!r}")
    head = _HEAD.pack(
        packet.src,
        packet.dst,
        packet.ttl,
        flags,
        len(proto),
        packet.size,
        packet.created_at,
        len(ecmp_bytes),
        len(extra),
        len(span_bytes),
    )
    return head + proto + ecmp_bytes + extra + span_bytes


def decode_packet(data: bytes) -> Packet:
    """Parse bytes from :func:`encode_packet` back into a packet.

    Strict like the ECMP codec: short buffers and trailing bytes are a
    :class:`CodecError`, never a silent truncation.
    """
    if len(data) < _HEAD.size:
        raise CodecError(f"packet truncated: {len(data)} bytes")
    (
        src, dst, ttl, flags, proto_len, size, created_at,
        ecmp_len, extra_len, span_len,
    ) = _HEAD.unpack(data[: _HEAD.size])
    expected = _HEAD.size + proto_len + ecmp_len + extra_len + span_len
    if len(data) != expected:
        raise CodecError(f"packet framing: {len(data)} bytes, expected {expected}")
    at = _HEAD.size
    proto = data[at : at + proto_len].decode("ascii")
    at += proto_len
    headers: dict = {}
    payload = None
    if flags & _FLAG_ECMP:
        raw = data[at : at + ecmp_len]
        headers["ecmp"] = bytes(raw) if flags & _FLAG_ECMP_RAW else decode_message(raw)
    at += ecmp_len
    if flags & _FLAG_EXTRA:
        extra_headers, payload = pickle.loads(data[at : at + extra_len])
        headers.update(extra_headers)
    at += extra_len
    if flags & _FLAG_SPANCTX:
        headers[SPAN_HEADER] = _decode_spanctx(data[at : at + span_len])
    if flags & _FLAG_RELIABLE:
        headers["reliable"] = True
    return Packet(
        src=src,
        dst=dst,
        proto=proto,
        payload=payload,
        size=size,
        ttl=ttl,
        headers=headers,
        created_at=created_at,
    )
