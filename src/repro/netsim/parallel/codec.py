"""Serialization of :class:`~repro.netsim.packet.Packet` across the cut.

Packets crossing partition boundaries travel between worker processes
as bytes. The fixed fields pack into a small struct header; the
``ecmp`` header — the message object the protocol put on the packet —
is serialized with the *real* ECMP wire codec
(:func:`repro.core.ecmp.messages.encode_message`), so coalesced
TCP-mode batches cross the cut as genuine ``MSG_BATCH`` frames and the
sharded simulator exercises the same encode/decode paths as a
``wire_format=True`` run. Tracer span contexts (the ``spanctx`` header
instrumented runs put on every control message) travel in a compact
struct block — kind(1) count(2), then per entry present(1) +
trace_id(8) span_id(8) — so cross-shard trace stitching costs 17 bytes
per context instead of a pickle blob, and the wire format stays
inspectable. Everything else the struct layout cannot express
(non-ECMP payloads, encapsulated packets) falls back to pickle,
flagged so decode knows which path to take.

``created_at`` is preserved exactly — delivery-latency histograms are
part of the equivalence contract with the single-process oracle.
``uid`` is *not* preserved: it is a debugging identity local to one
process's packet counter, and nothing in the protocol keys on it.

The second half of this module is the *frame* codec the sync protocol
itself rides on: horizon grants, coalesced sync reports (exports +
counters + optional telemetry in one frame), and the control frames
(ready/result/exit/error). Grants and reports are packed structs —
zero pickle on the hot loop; pickle survives only in the off-hot-path
result frame and the optional telemetry blob a report can carry.
"""

from __future__ import annotations

import pickle
import struct
from typing import Optional

from repro.core.ecmp.messages import decode_message, encode_message
from repro.errors import CodecError
from repro.netsim.packet import Packet
from repro.obs.hooks import SPAN_HEADER
from repro.obs.tracing import SpanContext

#: src(4) dst(4) ttl(2) flags(1) proto-len(1) size(4) created_at(8)
#: ecmp-len(4) extra-len(4) span-len(2)
_HEAD = struct.Struct("!IIHBBId IIH")

_FLAG_RELIABLE = 0x01
_FLAG_ECMP = 0x02
#: The ``ecmp`` header already held wire bytes (a ``wire_format=True``
#: network); pass them through instead of re-encoding.
_FLAG_ECMP_RAW = 0x04
_FLAG_EXTRA = 0x08
#: A trace context (or an aligned list of them, for batch frames) rides
#: in the compact span block instead of the pickle fallback.
_FLAG_SPANCTX = 0x10

#: One span-block entry body: trace_id(8) span_id(8). Shard-namespaced
#: ids (see :func:`repro.obs.tracing.shard_id_base`) fit u64 comfortably.
_SPAN_CTX = struct.Struct("!QQ")
_SPAN_BLOCK_HEAD = struct.Struct("!BH")  # kind(1) count(2)
_SPANCTX_SINGLE = 1
_SPANCTX_LIST = 2


def _encode_spanctx(value) -> bytes:
    """Compact encoding of the ``spanctx`` header: a single
    :class:`SpanContext` or a list of optional contexts aligned with a
    batch frame's records (None entries marked absent)."""
    if isinstance(value, SpanContext):
        kind, entries = _SPANCTX_SINGLE, [value]
    else:
        kind, entries = _SPANCTX_LIST, list(value)
    parts = [_SPAN_BLOCK_HEAD.pack(kind, len(entries))]
    for ctx in entries:
        if ctx is None:
            parts.append(b"\x00")
        else:
            parts.append(b"\x01" + _SPAN_CTX.pack(ctx.trace_id, ctx.span_id))
    return b"".join(parts)


def _decode_spanctx(data: bytes):
    if len(data) < _SPAN_BLOCK_HEAD.size:
        raise CodecError(f"span block truncated: {len(data)} bytes")
    kind, count = _SPAN_BLOCK_HEAD.unpack(data[: _SPAN_BLOCK_HEAD.size])
    if kind not in (_SPANCTX_SINGLE, _SPANCTX_LIST):
        raise CodecError(f"unknown span block kind {kind}")
    at = _SPAN_BLOCK_HEAD.size
    entries = []
    for _ in range(count):
        if at >= len(data):
            raise CodecError("span block truncated mid-entry")
        present = data[at]
        at += 1
        if present:
            if at + _SPAN_CTX.size > len(data):
                raise CodecError("span block truncated mid-context")
            trace_id, span_id = _SPAN_CTX.unpack(data[at : at + _SPAN_CTX.size])
            at += _SPAN_CTX.size
            entries.append(SpanContext(trace_id, span_id))
        else:
            entries.append(None)
    if at != len(data):
        raise CodecError(f"span block framing: {len(data)} bytes, expected {at}")
    if kind == _SPANCTX_SINGLE:
        if len(entries) != 1 or entries[0] is None:
            raise CodecError("single span block must carry exactly one context")
        return entries[0]
    return entries


def encode_packet(packet: Packet) -> bytes:
    """Serialize ``packet`` (fields, headers, payload) to bytes."""
    flags = 0
    headers = dict(packet.headers)
    if headers.pop("reliable", False):
        flags |= _FLAG_RELIABLE
    ecmp_bytes = b""
    message = headers.pop("ecmp", None)
    if message is not None:
        flags |= _FLAG_ECMP
        if isinstance(message, (bytes, bytearray)):
            flags |= _FLAG_ECMP_RAW
            ecmp_bytes = bytes(message)
        else:
            ecmp_bytes = encode_message(message)
    span_bytes = b""
    spanctx = headers.pop(SPAN_HEADER, None)
    if spanctx is not None:
        flags |= _FLAG_SPANCTX
        span_bytes = _encode_spanctx(spanctx)
        if len(span_bytes) > 0xFFFF:
            raise CodecError(f"span block too large: {len(span_bytes)} bytes")
    extra = b""
    if headers or packet.payload is not None:
        flags |= _FLAG_EXTRA
        extra = pickle.dumps((headers, packet.payload), protocol=pickle.HIGHEST_PROTOCOL)
    proto = packet.proto.encode("ascii")
    if len(proto) > 0xFF:
        raise CodecError(f"proto label too long: {packet.proto!r}")
    head = _HEAD.pack(
        packet.src,
        packet.dst,
        packet.ttl,
        flags,
        len(proto),
        packet.size,
        packet.created_at,
        len(ecmp_bytes),
        len(extra),
        len(span_bytes),
    )
    return head + proto + ecmp_bytes + extra + span_bytes


def decode_packet(data: bytes) -> Packet:
    """Parse bytes from :func:`encode_packet` back into a packet.

    Strict like the ECMP codec: short buffers and trailing bytes are a
    :class:`CodecError`, never a silent truncation.
    """
    if len(data) < _HEAD.size:
        raise CodecError(f"packet truncated: {len(data)} bytes")
    (
        src, dst, ttl, flags, proto_len, size, created_at,
        ecmp_len, extra_len, span_len,
    ) = _HEAD.unpack(data[: _HEAD.size])
    expected = _HEAD.size + proto_len + ecmp_len + extra_len + span_len
    if len(data) != expected:
        raise CodecError(f"packet framing: {len(data)} bytes, expected {expected}")
    at = _HEAD.size
    proto = data[at : at + proto_len].decode("ascii")
    at += proto_len
    headers: dict = {}
    payload = None
    if flags & _FLAG_ECMP:
        raw = data[at : at + ecmp_len]
        headers["ecmp"] = bytes(raw) if flags & _FLAG_ECMP_RAW else decode_message(raw)
    at += ecmp_len
    if flags & _FLAG_EXTRA:
        extra_headers, payload = pickle.loads(data[at : at + extra_len])
        headers.update(extra_headers)
    at += extra_len
    if flags & _FLAG_SPANCTX:
        headers[SPAN_HEADER] = _decode_spanctx(data[at : at + span_len])
    if flags & _FLAG_RELIABLE:
        headers["reliable"] = True
    return Packet(
        src=src,
        dst=dst,
        proto=proto,
        payload=payload,
        size=size,
        ttl=ttl,
        headers=headers,
        created_at=created_at,
    )


# -- sync-protocol frames ---------------------------------------------------
#
# Every coordinator/worker message is one length-delimited frame (the
# transport adds the length): a kind byte, then a kind-specific packed
# body. Export records travel inside grant frames (imports) and report
# frames (exports) in the exact 7-tuple shape the worker uses
# internally: (arrival, src_rank, export_seq, dst_rank, node_name,
# iface_index, packet_bytes).

FRAME_READY = 0x01
FRAME_GRANT = 0x02
FRAME_REPORT = 0x03
FRAME_RESULT_REQ = 0x04
FRAME_RESULT = 0x05
FRAME_EXIT = 0x06
FRAME_ERROR = 0x07

#: Grant flags.
GRANT_FINAL = 0x01
#: The grant is an eager one-window round (the PR-7 baseline protocol):
#: the worker runs exactly one window to the single rung and reports.
GRANT_EAGER = 0x02

#: Report flags.
REPORT_FINALIZED = 0x01
REPORT_STALLED = 0x02
REPORT_TELEMETRY = 0x04

#: arrival(8) src_rank(2) export_seq(4) dst_rank(2) iface(2)
#: name-len(2) data-len(4)
_EXPORT_HEAD = struct.Struct("!dHIHHHI")
#: flags(1) rung-count(2) import-count(4)
_GRANT_HEAD = struct.Struct("!BHI")
#: flags(1) windows(4) dispatched(8) next-time-count(1) export-count(4)
#: telemetry-len(4)
_REPORT_HEAD = struct.Struct("!BIQBI I")
#: next_time(8) ops_scheduled(4)
_READY_BODY = struct.Struct("!dI")


def _encode_exports(records: list[tuple]) -> bytes:
    parts = []
    for arrival, src_rank, seq, dst_rank, node_name, iface, data in records:
        name = node_name.encode("ascii")
        parts.append(
            _EXPORT_HEAD.pack(
                arrival, src_rank, seq, dst_rank, iface, len(name), len(data)
            )
        )
        parts.append(name)
        parts.append(data)
    return b"".join(parts)


def _decode_exports(data: bytes, at: int, count: int) -> tuple[list[tuple], int]:
    records = []
    head = _EXPORT_HEAD
    for _ in range(count):
        if at + head.size > len(data):
            raise CodecError("export record truncated")
        arrival, src_rank, seq, dst_rank, iface, name_len, data_len = (
            head.unpack_from(data, at)
        )
        at += head.size
        if at + name_len + data_len > len(data):
            raise CodecError("export record body truncated")
        name = data[at : at + name_len].decode("ascii")
        at += name_len
        packet = data[at : at + data_len]
        at += data_len
        records.append((arrival, src_rank, seq, dst_rank, name, iface, packet))
    return records, at


def encode_ready(next_time: float, ops_scheduled: int) -> bytes:
    return bytes([FRAME_READY]) + _READY_BODY.pack(next_time, ops_scheduled)


def encode_grant(
    ladder: list[float], imports: list[tuple], final: bool, eager: bool
) -> bytes:
    flags = (GRANT_FINAL if final else 0) | (GRANT_EAGER if eager else 0)
    head = _GRANT_HEAD.pack(flags, len(ladder), len(imports))
    rungs = struct.pack(f"!{len(ladder)}d", *ladder)
    return bytes([FRAME_GRANT]) + head + rungs + _encode_exports(imports)


def encode_report(
    next_times: list[float],
    windows: int,
    dispatched: int,
    exports: list[tuple],
    finalized: bool,
    stalled: bool,
    telemetry: Optional[bytes] = None,
) -> bytes:
    flags = (
        (REPORT_FINALIZED if finalized else 0)
        | (REPORT_STALLED if stalled else 0)
        | (REPORT_TELEMETRY if telemetry is not None else 0)
    )
    blob = telemetry or b""
    head = _REPORT_HEAD.pack(
        flags, windows, dispatched, len(next_times), len(exports), len(blob)
    )
    times = struct.pack(f"!{len(next_times)}d", *next_times)
    return (
        bytes([FRAME_REPORT]) + head + times + _encode_exports(exports) + blob
    )


def encode_result(payload: object) -> bytes:
    return bytes([FRAME_RESULT]) + pickle.dumps(
        payload, protocol=pickle.HIGHEST_PROTOCOL
    )


def encode_error(message: str) -> bytes:
    return bytes([FRAME_ERROR]) + message.encode("utf-8", "replace")


#: The two body-less control frames, prebuilt.
RESULT_REQ_FRAME = bytes([FRAME_RESULT_REQ])
EXIT_FRAME = bytes([FRAME_EXIT])


def decode_frame(frame: bytes):
    """Parse one frame into ``(kind, body)``.

    Bodies by kind: READY ``(next_time, ops_scheduled)``; GRANT
    ``(ladder, imports, final, eager)``; REPORT ``(next_times,
    windows, dispatched, exports, finalized, stalled, telemetry)``
    with ``telemetry`` already unpickled (or None); RESULT the
    unpickled payload; ERROR the message string; RESULT_REQ/EXIT
    ``None``. Strict framing: trailing bytes raise
    :class:`CodecError`.
    """
    if not frame:
        raise CodecError("empty frame")
    kind = frame[0]
    body = frame[1:]
    if kind == FRAME_READY:
        if len(body) != _READY_BODY.size:
            raise CodecError(f"ready frame framing: {len(body)} bytes")
        return kind, _READY_BODY.unpack(body)
    if kind == FRAME_GRANT:
        if len(body) < _GRANT_HEAD.size:
            raise CodecError(f"grant frame truncated: {len(body)} bytes")
        flags, rung_count, import_count = _GRANT_HEAD.unpack_from(body, 0)
        at = _GRANT_HEAD.size
        if at + 8 * rung_count > len(body):
            raise CodecError("grant ladder truncated")
        ladder = list(struct.unpack_from(f"!{rung_count}d", body, at))
        at += 8 * rung_count
        imports, at = _decode_exports(body, at, import_count)
        if at != len(body):
            raise CodecError(
                f"grant framing: {len(body)} bytes, expected {at}"
            )
        return kind, (
            ladder, imports, bool(flags & GRANT_FINAL), bool(flags & GRANT_EAGER)
        )
    if kind == FRAME_REPORT:
        if len(body) < _REPORT_HEAD.size:
            raise CodecError(f"report frame truncated: {len(body)} bytes")
        flags, windows, dispatched, time_count, export_count, blob_len = (
            _REPORT_HEAD.unpack_from(body, 0)
        )
        at = _REPORT_HEAD.size
        if at + 8 * time_count > len(body):
            raise CodecError("report times truncated")
        next_times = list(struct.unpack_from(f"!{time_count}d", body, at))
        at += 8 * time_count
        exports, at = _decode_exports(body, at, export_count)
        telemetry = None
        if flags & REPORT_TELEMETRY:
            if at + blob_len != len(body):
                raise CodecError("report telemetry blob framing")
            telemetry = pickle.loads(body[at : at + blob_len])
            at += blob_len
        if at != len(body):
            raise CodecError(
                f"report framing: {len(body)} bytes, expected {at}"
            )
        return kind, (
            next_times,
            windows,
            dispatched,
            exports,
            bool(flags & REPORT_FINALIZED),
            bool(flags & REPORT_STALLED),
            telemetry,
        )
    if kind == FRAME_RESULT:
        return kind, pickle.loads(body)
    if kind == FRAME_ERROR:
        return kind, body.decode("utf-8", "replace")
    if kind in (FRAME_RESULT_REQ, FRAME_EXIT):
        if body:
            raise CodecError(f"control frame {kind:#x} carries {len(body)} bytes")
        return kind, None
    raise CodecError(f"unknown frame kind {kind:#x}")
