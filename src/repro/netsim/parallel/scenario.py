"""Declarative, picklable workload specs for sharded runs.

A sharded run needs the *same* scenario built independently in every
worker process (and once more for the single-process oracle), so the
workload cannot be a bag of closures: :class:`ScenarioSpec` describes
the topology by ``TopologyBuilder`` generator name, the network by
constructor kwargs, and the workload as declarative op tuples

    (time, kind, *args)   with kind in
    "join" / "leave"          (host subscriptions)
    "send"                    (source datagram on a channel)
    "block_join" / "block_leave"  (aggregated subscriber blocks)

Each op has a well-defined *owner node* (the host, the source, or the
block's edge router), which is how a worker knows whether to schedule
it: ops execute only in the partition that owns their node, which is
also where the oracle dispatches them, so per-event-name obs counters
line up exactly.

Large workloads reference an *op generator* from :data:`OPGENS` by
name instead of carrying a million tuples through a pipe: the spec
pickles as ``(name, kwargs)`` and every process regenerates the
identical op list locally (generators must be deterministic —
anything random must derive from the spec's seed).

Ops are intentionally limited to membership and data traffic: link
up/down events change *global* state (unicast routing everywhere) and
are not supported in sharded runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.core.network import MPEG2_PACKET_BYTES, ExpressNetwork
from repro.errors import SimulationError
from repro.netsim.topology import Topology, TopologyBuilder

#: Registry of named op generators: name -> callable(**kwargs) -> list
#: of (time, kind, *args) tuples. Deterministic by construction.
OPGENS: dict[str, Callable[..., list[tuple]]] = {}


def opgen(name: str) -> Callable:
    """Register a deterministic op generator under ``name``."""

    def deco(fn: Callable[..., list[tuple]]) -> Callable[..., list[tuple]]:
        OPGENS[name] = fn
        return fn

    return deco


@dataclass
class ScenarioSpec:
    """Everything needed to rebuild one workload anywhere."""

    #: ``TopologyBuilder`` generator name (``isp``, ``balanced_tree``…).
    topology: str
    #: Kwargs for the generator (seed/scheduler are supplied separately).
    topology_kwargs: dict = field(default_factory=dict)
    #: Source host node name (channels are allocated here; rank 0 owns it).
    source: str = ""
    n_channels: int = 1
    #: Edge routers to attach aggregated subscriber blocks to, in order.
    blocks: tuple = ()
    #: Extra ``ExpressNetwork`` kwargs (must be picklable).
    net_kwargs: dict = field(default_factory=dict)
    #: Inline op tuples (small workloads / tests).
    ops: tuple = ()
    #: ``(OPGENS name, kwargs)`` for big workloads; regenerated locally.
    opgen: Optional[tuple] = None
    #: Simulated end time; every run dispatches events <= duration.
    duration: float = 1.0
    seed: int = 0

    def all_ops(self) -> list[tuple]:
        ops = list(self.ops)
        if self.opgen is not None:
            name, kwargs = self.opgen
            generator = OPGENS.get(name)
            if generator is None:
                raise SimulationError(f"unknown op generator {name!r}")
            ops.extend(generator(**kwargs))
        return ops

    def op_owner(self, op: tuple) -> str:
        """The node whose partition schedules and dispatches ``op``."""
        kind = op[1]
        if kind in ("join", "leave"):
            return op[2]
        if kind == "send":
            return self.source
        if kind in ("block_join", "block_leave"):
            return self.blocks[op[2]]
        raise SimulationError(f"unknown op kind {kind!r}")


def build(spec: ScenarioSpec, scheduler: str = "heap", obs=None):
    """Construct the scenario's network: returns ``(net, channels,
    blocks)``. Identical in every process for a given spec — node
    addresses, interface indices, channel suffixes, and block names all
    come from deterministic allocation order."""
    builder = getattr(TopologyBuilder, spec.topology, None)
    if builder is None:
        raise SimulationError(f"unknown topology generator {spec.topology!r}")
    topo: Topology = builder(seed=spec.seed, scheduler=scheduler, **spec.topology_kwargs)
    net = ExpressNetwork(topo, obs=obs, **spec.net_kwargs)
    source = net.source(spec.source)
    channels = [source.allocate_channel() for _ in range(spec.n_channels)]
    blocks = [net.subscriber_block(name) for name in spec.blocks]
    return net, channels, blocks


def schedule_ops(
    spec: ScenarioSpec,
    net: ExpressNetwork,
    channels: list,
    blocks: list,
    owned: Optional[set] = None,
) -> int:
    """Schedule the spec's ops onto ``net``'s simulator; ``owned``
    restricts to ops whose owner node is in the set (a partition
    worker). Returns how many ops were scheduled.

    The whole workload goes through one :meth:`Simulator.schedule_bulk`
    call (dispatch order, ties included, matches the old sequential
    ``schedule_at`` loop), and unit block joins/leaves use the cached
    batchable bound ops (:meth:`SubscriberBlock.join_op`), so
    unprofiled wheel runs get batch slot dispatch and profiled worker
    runs still amortise per-event scheduling cost into one *alloc*
    phase measurement."""
    source = net.source(spec.source)
    sim = net.sim
    items: list[tuple] = []
    for op in spec.all_ops():
        if owned is not None and spec.op_owner(op) not in owned:
            continue
        when, kind = op[0], op[1]
        if kind == "join":
            action = _join_action(net, op[2], channels[op[3]])
        elif kind == "leave":
            action = _leave_action(net, op[2], channels[op[3]])
        elif kind == "send":
            size = op[3] if len(op) > 3 else MPEG2_PACKET_BYTES
            action = _send_action(source, channels[op[2]], size)
        elif kind == "block_join":
            n = op[4] if len(op) > 4 else 1
            block, channel = blocks[op[2]], channels[op[3]]
            action = block.join_op(channel) if n == 1 else _block_join_action(block, channel, n)
        elif kind == "block_leave":
            n = op[4] if len(op) > 4 else 1
            block, channel = blocks[op[2]], channels[op[3]]
            action = block.leave_op(channel) if n == 1 else _block_leave_action(block, channel, n)
        else:
            raise SimulationError(f"unknown op kind {kind!r}")
        items.append((when, action))
    return sim.schedule_bulk(items, name="op")


def _join_action(net, host, channel):
    return lambda: net.host(host).subscribe(channel)


def _leave_action(net, host, channel):
    return lambda: net.host(host).unsubscribe(channel)


def _send_action(source, channel, size):
    return lambda: source.send(channel, size=size)


def _block_join_action(block, channel, n):
    return lambda: block.join(channel, n)


def _block_leave_action(block, channel, n):
    return lambda: block.leave(channel, n)


@opgen("block_storm")
def block_storm(
    n_subs: int,
    n_blocks: int,
    n_channels: int = 1,
    base: float = 0.1,
    join_window: float = 4.0,
    leave_fraction: float = 0.125,
    leave_window: float = 0.8,
    packets: int = 20,
    packet_spacing: float = 0.005,
    burst: int = 1,
    burst_gap: float = 0.01,
    seed: int = 0,
) -> list[tuple]:
    """The ``mega_join_storm`` shape as declarative ops: ``n_subs``
    block joins spread over ``join_window``, a ``leave_fraction`` wave
    after it, then ``packets`` source datagrams on every channel in
    bursts of ``burst`` (``burst_gap`` apart inside a burst, bursts
    ``packet_spacing`` apart). The op list is deterministically shuffled
    (seeded) so scheduler inserts arrive in random time order — in
    submission order a heap's sift-up degenerates to O(1) and scheduler
    comparisons measure nothing.

    The window widths shape the *sync* profile of sharded runs: short
    join/leave windows plus a wide packet spacing reproduce the paper's
    single-source regime — a subscription-churn burst that converges,
    then a long steady-state data phase where only the source shard
    (and, per packet, the subscribed shards) have work. The defaults
    keep the original dense shape used by the scheduler benches."""
    n_leaves = int(n_subs * leave_fraction)
    ops: list[tuple] = [
        (base + join_window * i / n_subs, "block_join", i % n_blocks, i % n_channels, 1)
        for i in range(n_subs)
    ]
    leave_base = base + join_window + 0.1
    ops += [
        (leave_base + leave_window * i / max(n_leaves, 1), "block_leave",
         i % n_blocks, i % n_channels, 1)
        for i in range(n_leaves)
    ]
    random.Random(seed + 1).shuffle(ops)
    send_base = leave_base + leave_window + 0.2
    for channel_index in range(n_channels):
        ops += [
            (send_base + packet_spacing * (k // burst) + burst_gap * (k % burst),
             "send", channel_index)
            for k in range(packets)
        ]
    return ops
