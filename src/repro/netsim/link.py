"""Point-to-point links with delay, bandwidth, loss, and failure.

Delivery time is ``propagation delay + size / bandwidth``; loss is an
independent Bernoulli draw per packet from the simulator's seeded RNG,
so runs are reproducible. Links can be taken down and brought back up,
which notifies both endpoint nodes (used by the topology-change and
TCP-mode-failure experiments).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import TopologyError
from repro.netsim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.engine import Simulator
    from repro.netsim.node import Interface, Node

#: Default link bandwidth: 100 Mbit/s, the paper's "each low-cost PC
#: today is capable of forwarding data at a rate in excess of 100 Mbps".
DEFAULT_BANDWIDTH = 100e6 / 8


class Link:
    """A bidirectional point-to-point link between two interfaces."""

    def __init__(
        self,
        sim: "Simulator",
        iface_a: "Interface",
        iface_b: "Interface",
        delay: float = 0.001,
        bandwidth: float = DEFAULT_BANDWIDTH,
        loss: float = 0.0,
    ) -> None:
        if delay < 0:
            raise TopologyError(f"link delay must be >= 0, got {delay}")
        if bandwidth <= 0:
            raise TopologyError(f"link bandwidth must be > 0, got {bandwidth}")
        if not 0.0 <= loss < 1.0:
            raise TopologyError(f"link loss must be in [0, 1), got {loss}")
        self.sim = sim
        self.iface_a = iface_a
        self.iface_b = iface_b
        self.delay = delay
        self.bandwidth = bandwidth
        self.loss = loss
        self.up = True
        self.tx_packets = 0
        self.lost_packets = 0
        self.ecmp_wire_packets = 0
        self.ecmp_wire_bytes = 0
        #: Optional :class:`repro.obs.hooks.LinkMetrics` set by
        #: Observability attachment.
        self.metrics = None
        #: Optional capture hook installed by the parallel-simulation
        #: proxy layer (:mod:`repro.netsim.parallel.proxy`) on cut
        #: links: when set, delivery is not scheduled locally — the
        #: packet (with its exact arrival time and receive interface)
        #: is handed to ``capture(link, sender, packet, arrival_time)``
        #: for export to the partition that owns the far end. All
        #: sender-side accounting (tx counters, loss draw, metrics)
        #: still happens, so per-link counters match a single-process
        #: run when summed across partitions.
        self.capture = None
        #: Optional wire-mutation hook installed by the fault-injection
        #: subsystem (:mod:`repro.faults.wire`). Called after the loss
        #: draw with ``mutator(link, sender, packet)`` and must return
        #: an iterable of ``(extra_delay, packet)`` deliveries: an
        #: empty iterable drops the frame, two entries duplicate it,
        #: and a positive ``extra_delay`` reorders it behind later
        #: traffic. Each delivery is routed through the same
        #: capture-or-schedule path as an unmutated packet, so the
        #: parallel proxy layer sees mutated frames too. Sender-side
        #: accounting happens once per :meth:`transmit` call, before
        #: mutation, exactly like the loss draw.
        self.mutator = None
        iface_a.link = self
        iface_b.link = self

    @property
    def node_a(self) -> "Node":
        return self.iface_a.node

    @property
    def node_b(self) -> "Node":
        return self.iface_b.node

    def other_end(self, node: "Node") -> "Node":
        if node is self.node_a:
            return self.node_b
        if node is self.node_b:
            return self.node_a
        raise TopologyError(f"{node.name} is not attached to this link")

    def interface_of(self, node: "Node") -> "Interface":
        if node is self.node_a:
            return self.iface_a
        if node is self.node_b:
            return self.iface_b
        raise TopologyError(f"{node.name} is not attached to this link")

    def transmit(self, sender: "Node", packet: Packet) -> None:
        """Move ``packet`` from ``sender`` toward the other end."""
        if not self.up:
            return
        self.tx_packets += 1
        if self.metrics is not None:
            self.metrics.transmitted()
        if packet.proto == "ecmp":
            # Wire-level control accounting: one increment per wire
            # packet, so a coalesced batch frame counts once.
            self.ecmp_wire_packets += 1
            self.ecmp_wire_bytes += packet.size
            if self.metrics is not None:
                self.metrics.ecmp_wire(packet.size)
        # TCP-mode control traffic is marked reliable: retransmission
        # hides loss, so the loss draw is skipped (delay still applies).
        reliable = bool(packet.headers.get("reliable"))
        if self.loss and not reliable and self.sim.rng.random() < self.loss:
            self.lost_packets += 1
            if self.metrics is not None:
                self.metrics.lost()
            return
        receiver = self.other_end(sender)
        rx_iface = self.interface_of(receiver)
        latency = self.delay + packet.size / self.bandwidth
        if self.mutator is not None:
            for extra_delay, mutated in self.mutator(self, sender, packet):
                self._deliver(receiver, rx_iface, mutated, latency + extra_delay)
            return
        # ownership transfers; callers copy for fanout
        self._deliver(receiver, rx_iface, packet, latency)

    def _deliver(
        self,
        receiver: "Node",
        rx_iface: "Interface",
        packet: Packet,
        latency: float,
    ) -> None:
        if self.capture is not None:
            sender = self.other_end(receiver)
            self.capture(self, sender, packet, self.sim.now + latency)
            return
        self.sim.schedule(
            latency,
            lambda: receiver.receive(packet, rx_iface.index),
            name=f"deliver:{packet.proto}",
        )

    def set_up(self, up: bool) -> None:
        """Change link state, notifying both endpoints on transitions."""
        if up == self.up:
            return
        self.up = up
        self.node_a.link_changed(self.iface_a.index, up)
        self.node_b.link_changed(self.iface_b.index, up)

    def fail(self) -> None:
        self.set_up(False)

    def recover(self) -> None:
        self.set_up(True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.up else "DOWN"
        return f"<Link {self.node_a.name}<->{self.node_b.name} {state}>"
