"""Nodes and interfaces.

A :class:`Node` is a router or host. It owns numbered
:class:`Interface` objects, each attached to one :class:`Link`
(point-to-point) — the model the paper's FIB format assumes (up to 32
interfaces per router, Figure 5). Protocol behaviour lives in
:class:`ProtocolAgent` subclasses registered on the node per protocol
label; the node dispatches each received packet to the agent registered
for ``packet.proto`` (falling back to a wildcard agent if present).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import SimulationError, TopologyError
from repro.netsim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.engine import Simulator
    from repro.netsim.link import Link

#: Interface count limit implied by the 32-bit outgoing-interface bitmap
#: in the paper's 12-byte FIB entry (Figure 5).
MAX_INTERFACES = 32


class Interface:
    """One attachment point of a node to a link."""

    def __init__(self, node: "Node", index: int) -> None:
        self.node = node
        self.index = index
        self.link: Optional["Link"] = None
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0

    @property
    def up(self) -> bool:
        return self.link is not None and self.link.up

    def neighbor(self) -> Optional["Node"]:
        """The node on the far side of this interface's link."""
        if self.link is None:
            return None
        return self.link.other_end(self.node)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        peer = self.neighbor()
        return f"<If {self.node.name}#{self.index} -> {peer.name if peer else '-'}>"


class ProtocolAgent:
    """Base class for protocol implementations attached to a node.

    Subclasses override :meth:`handle_packet`; the node calls it for
    every received packet whose ``proto`` matches the label the agent
    was registered under (or for all packets, if registered under
    ``"*"``).
    """

    def __init__(self, node: "Node") -> None:
        self.node = node
        self.sim = node.sim

    def handle_packet(self, packet: Packet, ifindex: int) -> None:
        raise NotImplementedError

    def start(self) -> None:
        """Called once when the simulation topology is finalized."""

    def on_link_change(self, ifindex: int, up: bool) -> None:
        """Called when the link on ``ifindex`` changes state."""


class Node:
    """A router or host in the simulated network."""

    def __init__(self, sim: "Simulator", name: str, address: int) -> None:
        self.sim = sim
        self.name = name
        self.address = address
        self.interfaces: list[Interface] = []
        self.agents: dict[str, ProtocolAgent] = {}
        self.dropped_packets = 0
        self.unmatched_packets = 0
        #: Optional :class:`repro.netsim.trace.PacketTrace` shared via
        #: Topology.attach_trace(); records every tx/rx/drop when set.
        self.trace = None
        #: Optional :class:`repro.obs.hooks.NodeMetrics` set by
        #: Observability attachment; counts every tx/rx/drop into the
        #: shared metrics registry when set.
        self.metrics = None

    # -- wiring ----------------------------------------------------------

    def add_interface(self) -> Interface:
        if len(self.interfaces) >= MAX_INTERFACES:
            raise TopologyError(
                f"{self.name}: exceeded {MAX_INTERFACES} interfaces "
                "(limit implied by the 32-bit FIB outgoing bitmap)"
            )
        iface = Interface(self, len(self.interfaces))
        self.interfaces.append(iface)
        return iface

    def interface_to(self, neighbor: "Node") -> Optional[Interface]:
        """The local interface whose link leads to ``neighbor``."""
        for iface in self.interfaces:
            if iface.neighbor() is neighbor:
                return iface
        return None

    def register_agent(self, proto: str, agent: ProtocolAgent) -> None:
        if proto in self.agents:
            raise SimulationError(f"{self.name}: agent already registered for {proto!r}")
        self.agents[proto] = agent

    def agent_for(self, proto: str) -> Optional[ProtocolAgent]:
        return self.agents.get(proto) or self.agents.get("*")

    def neighbors(self) -> list["Node"]:
        """Nodes reachable over one up link, in interface order."""
        result = []
        for iface in self.interfaces:
            peer = iface.neighbor()
            if peer is not None and iface.up:
                result.append(peer)
        return result

    # -- data path -------------------------------------------------------

    def send(self, packet: Packet, ifindex: int) -> bool:
        """Transmit ``packet`` out interface ``ifindex``.

        Returns True if the packet entered the link (it may still be
        lost in transit), False if the interface is down or unwired.
        """
        if not 0 <= ifindex < len(self.interfaces):
            raise SimulationError(f"{self.name}: no interface {ifindex}")
        iface = self.interfaces[ifindex]
        if iface.link is None or not iface.link.up:
            self.dropped_packets += 1
            if self.trace is not None:
                self.trace.record(
                    self.sim.now, self.name, "drop", packet.proto, packet.size,
                    detail="link-down",
                )
            if self.metrics is not None:
                self.metrics.packet("drop", packet.proto, packet.size)
            return False
        iface.tx_packets += 1
        iface.tx_bytes += packet.size
        if self.trace is not None:
            self.trace.record(
                self.sim.now, self.name, "tx", packet.proto, packet.size,
                detail=f"if{ifindex}",
            )
        if self.metrics is not None:
            self.metrics.packet("tx", packet.proto, packet.size)
        iface.link.transmit(self, packet)
        return True

    def send_to_neighbor(self, packet: Packet, neighbor: "Node") -> bool:
        """Transmit ``packet`` on the interface facing ``neighbor``."""
        iface = self.interface_to(neighbor)
        if iface is None:
            self.dropped_packets += 1
            return False
        return self.send(packet, iface.index)

    def receive(self, packet: Packet, ifindex: int) -> None:
        """Entry point called by links when a packet arrives."""
        iface = self.interfaces[ifindex]
        iface.rx_packets += 1
        iface.rx_bytes += packet.size
        if self.trace is not None:
            self.trace.record(
                self.sim.now, self.name, "rx", packet.proto, packet.size,
                detail=f"if{ifindex}",
            )
        if self.metrics is not None:
            self.metrics.packet("rx", packet.proto, packet.size)
        if packet.ttl <= 0:
            self.dropped_packets += 1
            if self.metrics is not None:
                self.metrics.packet("drop", packet.proto, packet.size)
            return
        agent = self.agent_for(packet.proto)
        if agent is None:
            self.unmatched_packets += 1
            return
        agent.handle_packet(packet, ifindex)

    def link_changed(self, ifindex: int, up: bool) -> None:
        for agent in self.agents.values():
            agent.on_link_change(ifindex, up)

    def start_agents(self) -> None:
        for agent in self.agents.values():
            agent.start()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.name}>"
