"""Free-list arena for pooled :class:`~repro.netsim.engine.Event` records.

The mega-storm steady state is an allocation treadmill: every workload
op materialises an ``Event``, dispatches it once, and drops it — a
quarter-microsecond of allocator and GC traffic per event that dwarfs
the few field writes the event actually needs. The native core breaks
the treadmill twice over. On the timer wheel, ``schedule_bulk`` keeps
*pure* buckets of the caller's own ``(time, action)`` tuples and most
slots batch-dispatch without any ``Event`` ever existing (see
``docs/performance.md``). Where real events *are* still needed — the
heap scheduler (the equivalence oracle), and pure buckets touched by
an insert/cancel/profiled run, which must materialize into sorted
events — those events are marked *pooled* (the caller never receives
a reference, so no handle can outlive dispatch) and the engine returns
them here after they fire. The next materialization resets the
recycled records in place — ten field writes instead of an allocation.

Recycling granularity follows the dispatch path: when a whole
materialized slot of pooled events has been dispatched, the engine
hands the *list itself* back via :meth:`EventArena.release_block`, so
recycling costs O(1) per slot, not O(events); the heap scheduler
releases one event at a time through :meth:`EventArena.release`.

Use-after-recycle is guarded twice over:

* only *pooled* events are ever recycled, and pooled events are
  unreachable outside the engine by construction — ``schedule_bulk``
  returns a count, not the events;
* every acquisition bumps the event's ``gen`` counter, so a stale
  handle (should one ever exist) can detect the new incarnation and
  :meth:`Event.cancel_if` refuses to cancel it.

``REPRO_NATIVE=0`` disables the arena (and the engine's batch slot
dispatch) entirely — the pure-Python escape hatch for debugging; see
``docs/performance.md``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.engine import Event

#: Master switch for the native-speed event core (arena pooling and
#: batch slot dispatch). Read once at import; individual simulators can
#: override via ``Simulator(native=...)``.
NATIVE = os.environ.get("REPRO_NATIVE", "1") != "0"

#: Pool ceiling in events. Sized above the mega storm's in-flight
#: window (~113k pending events) so a full drain recycles everything;
#: beyond the cap, released events fall back to ordinary GC.
POOL_CAP = 1 << 17

#: Per-block ceiling for single-event releases (the heap path), so the
#: fill block stays cache-friendly and list growth stays amortised.
_FILL_BLOCK = 4096


class EventArena:
    """A free list of recycled events, stored as blocks of lists.

    Blocks are whole consumed wheel slots (``release_block``) or
    incrementally-filled lists (``release``). Acquisition pops from the
    newest block — LIFO keeps recently-touched records hot in cache.
    """

    __slots__ = ("blocks", "total", "cap", "acquired", "recycled", "dropped")

    def __init__(self, cap: int = POOL_CAP) -> None:
        #: Non-empty lists of recycled events; the engine pops from
        #: ``blocks[-1]`` inline on its bulk-schedule fast path.
        self.blocks: List[List["Event"]] = []
        self.total = 0
        self.cap = cap
        self.acquired = 0
        self.recycled = 0
        self.dropped = 0

    def acquire(self) -> "Event | None":
        """Pop one recycled event, or None when the pool is empty.

        The caller owns the record and must reset every field (and the
        ``gen`` bump happens at acquisition — see the module docstring).
        """
        blocks = self.blocks
        if not blocks:
            return None
        block = blocks[-1]
        event = block.pop()
        if not block:
            blocks.pop()
        self.total -= 1
        self.acquired += 1
        return event

    def release(self, event: "Event") -> None:
        """Recycle one dispatched pooled event (heap-scheduler path)."""
        if self.total >= self.cap:
            self.dropped += 1
            return
        blocks = self.blocks
        if blocks and len(blocks[-1]) < _FILL_BLOCK:
            blocks[-1].append(event)
        else:
            blocks.append([event])
        self.total += 1
        self.recycled += 1

    def release_block(self, events: List["Event"]) -> None:
        """Recycle a fully-dispatched slot of pooled events in O(1).

        The caller relinquishes the list itself; every entry must be a
        dispatched pooled event (the engine's batch commit guarantees
        this — clean slots hold nothing else).
        """
        n = len(events)
        if not n:
            return
        if self.total + n > self.cap:
            self.dropped += n
            return
        self.blocks.append(events)
        self.total += n
        self.recycled += n

    def clear(self) -> None:
        """Drop every pooled record (test isolation hook)."""
        self.blocks.clear()
        self.total = 0

    def stats(self) -> dict:
        return {
            "pooled": self.total,
            "acquired": self.acquired,
            "recycled": self.recycled,
            "dropped": self.dropped,
            "cap": self.cap,
        }


#: Process-wide arena shared by every native-mode simulator: the bench
#: harness runs heap and wheel back to back and repeats runs, and a
#: shared pool means the steady state (every run after the first)
#: allocates ~zero event objects. Ownership is not pooled state — the
#: engine resets ``owner`` (and every other field) on acquisition.
ARENA = EventArena()
