"""Packet model for the simulator.

A packet carries a stack of headers (dicts or dataclasses from
``repro.inet``/``repro.core``), an opaque payload, and explicit size
accounting so the benchmarks can report bandwidth in real bytes even
though headers travel as Python objects for convenience. Encapsulation
(IP-in-IP subcast, session-relay tunnelling) pushes a header and wraps
the inner packet as the payload.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """A simulated datagram.

    Attributes
    ----------
    src, dst:
        IPv4 addresses as integers (see :mod:`repro.inet.addr`).
    proto:
        Protocol label, e.g. ``"udp"``, ``"ecmp"``, ``"igmp"``, ``"data"``,
        ``"ipip"``.
    payload:
        Opaque application payload; for encapsulated packets this is the
        inner :class:`Packet`.
    size:
        Wire size in bytes, including all headers. Copies share size
        unless changed explicitly.
    ttl:
        IPv4 time-to-live; decremented per hop, packet dies at zero.
    headers:
        Free-form per-layer metadata added by protocol agents.
    """

    src: int
    dst: int
    proto: str = "data"
    payload: Any = None
    size: int = 64
    ttl: int = 64
    headers: dict = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_packet_ids))
    created_at: float = 0.0

    def copy(self) -> "Packet":
        """Per-interface fanout copy. Shares payload, copies metadata."""
        return Packet(
            src=self.src,
            dst=self.dst,
            proto=self.proto,
            payload=self.payload,
            size=self.size,
            ttl=self.ttl,
            headers=dict(self.headers),
            created_at=self.created_at,
        )

    def encapsulate(self, outer_src: int, outer_dst: int, proto: str = "ipip", overhead: int = 20) -> "Packet":
        """Wrap this packet in an outer packet (IP-in-IP style)."""
        return Packet(
            src=outer_src,
            dst=outer_dst,
            proto=proto,
            payload=self,
            size=self.size + overhead,
            ttl=64,
            created_at=self.created_at,
        )

    def decapsulate(self) -> "Packet":
        """Return the inner packet of an encapsulated one."""
        if not isinstance(self.payload, Packet):
            raise ValueError("packet is not encapsulated")
        return self.payload

    def is_encapsulated(self) -> bool:
        return isinstance(self.payload, Packet)
