"""Deterministic discrete-event network simulator substrate.

The paper's experiments run on real hosts and on the authors' own
simulator; this package provides the equivalent substrate: a seeded,
single-threaded event loop (:class:`~repro.netsim.engine.Simulator`),
nodes that host protocol agents, links with delay/bandwidth/loss, and a
topology layer with the generators used by the benchmarks (balanced
trees, stars, lines, random graphs, two-level ISP-like graphs).
"""

from repro.netsim.engine import Event, Simulator
from repro.netsim.link import Link
from repro.netsim.node import Interface, Node, ProtocolAgent
from repro.netsim.packet import Packet
from repro.netsim.topology import Topology, TopologyBuilder
from repro.netsim.trace import Counter, PacketTrace, TraceRecord

__all__ = [
    "Counter",
    "Event",
    "Interface",
    "Link",
    "Node",
    "Packet",
    "PacketTrace",
    "ProtocolAgent",
    "Simulator",
    "Topology",
    "TopologyBuilder",
    "TraceRecord",
]
