"""Reverse-path-forwarding helpers.

"The routing aspect of ECMP is simple because explicit source
specification allows reverse-path forwarding (RPF) to be used to route
subscriptions and unsubscriptions toward the source" (§3). These
helpers answer the two questions the protocol machinery asks:

* which neighbor/interface is *upstream* toward a channel source, and
* does an arriving data packet pass the incoming-interface check
  ("used to prevent data loops", §3.4 footnote)?
"""

from __future__ import annotations

from typing import Optional

from repro.netsim.node import Node
from repro.routing.unicast import UnicastRouting


def rpf_neighbor(routing: UnicastRouting, node: Node, source_name: str) -> Optional[Node]:
    """The upstream neighbor of ``node`` toward ``source_name``.

    None when ``node`` is itself the source's node or the source is
    unreachable.
    """
    hop = routing.next_hop(node.name, source_name)
    if hop is None:
        return None
    return routing.topo.node(hop)


def rpf_interface(routing: UnicastRouting, node: Node, source_name: str) -> Optional[int]:
    """Index of ``node``'s interface facing the RPF neighbor, or None."""
    upstream = rpf_neighbor(routing, node, source_name)
    if upstream is None:
        return None
    iface = node.interface_to(upstream)
    return iface.index if iface is not None else None


def rpf_check(
    routing: UnicastRouting, node: Node, source_name: str, arriving_ifindex: int
) -> bool:
    """True iff a packet from ``source_name`` arriving on
    ``arriving_ifindex`` came in on the RPF interface."""
    expected = rpf_interface(routing, node, source_name)
    return expected is not None and expected == arriving_ifindex
