"""Control-plane models of the multicast protocols EXPRESS is compared
against (§3.6, §7.1).

These are deliberately *models*, not packet-level implementations: the
paper's comparative claims are about where state lives, which routers a
protocol touches, and how far data detours — all properties of the
trees each protocol builds over the same unicast routing. Each model
shares :class:`MulticastTreeModel`'s interface so the ``X1`` benchmark
can sweep them uniformly:

* :class:`ExpressTreeModel` — per-source reverse shortest-path tree
  (the analytic twin of the live ECMP machinery; a property test checks
  they build identical trees).
* :class:`PimSmModel` — rendezvous-point shared tree with optional
  per-receiver switchover to source-specific trees, and sender
  "register" tunnelling to the RP.
* :class:`CbtModel` — bidirectional core-based tree; on-tree senders'
  packets travel along the tree, off-tree senders tunnel to the core.
* :class:`DvmrpModel` — broadcast-and-prune: data path is the source
  SPT, but every router in the domain is touched and holds prune or
  forwarding state.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import RoutingError
from repro.netsim.topology import Topology
from repro.routing.unicast import UnicastRouting


class MulticastTreeModel:
    """Shared interface: group membership and the derived tree."""

    name = "abstract"

    def __init__(self, topo: Topology, routing: UnicastRouting) -> None:
        self.topo = topo
        self.routing = routing
        self.members: set[str] = set()

    def join(self, node: str) -> None:
        self.topo.node(node)  # validate
        self.members.add(node)

    def leave(self, node: str) -> None:
        self.members.discard(node)

    # -- to override ---------------------------------------------------------

    def tree_edges(self) -> set[frozenset]:
        """Undirected edges carrying group state."""
        raise NotImplementedError

    def delivery_path(self, source: str, member: str) -> list[str]:
        """Node sequence a data packet traverses from ``source`` to
        ``member``, including any detour the protocol imposes."""
        raise NotImplementedError

    def routers_touched(self) -> set[str]:
        """Every node holding *any* state for the group (incl. prune
        state); the paper's point that EXPRESS state exists only on the
        source-to-subscriber paths is measured against this."""
        return self.nodes_on_tree()

    # -- shared helpers ------------------------------------------------------

    def nodes_on_tree(self) -> set[str]:
        nodes: set[str] = set()
        for edge in self.tree_edges():
            nodes.update(edge)
        return nodes

    def state_entries(self) -> dict[str, int]:
        """Group-state entry count per router."""
        return {name: 1 for name in self.routers_touched()}

    def total_state(self) -> int:
        return sum(self.state_entries().values())

    def stretch(self, source: str, member: str) -> float:
        """Delivery path length over shortest path length (1.0 = direct)."""
        direct = self.routing.hop_count(source, member)
        if direct == 0:
            return 1.0
        return (len(self.delivery_path(source, member)) - 1) / direct

    def _paths_union(self, root: str, leaves: set[str]) -> set[frozenset]:
        edges: set[frozenset] = set()
        for leaf in leaves:
            path = self.routing.path(leaf, root)
            for a, b in zip(path, path[1:]):
                edges.add(frozenset((a, b)))
        return edges


class ExpressTreeModel(MulticastTreeModel):
    """The analytic EXPRESS tree: reverse shortest paths to the source."""

    name = "express"

    def __init__(self, topo: Topology, routing: UnicastRouting, source: str) -> None:
        super().__init__(topo, routing)
        self.source = source

    def tree_edges(self) -> set[frozenset]:
        return self._paths_union(self.source, self.members)

    def delivery_path(self, source: str, member: str) -> list[str]:
        if source != self.source:
            raise RoutingError(
                f"channel source is {self.source}; {source} may not send"
            )
        return self.routing.path(source, member)


class PimSmModel(MulticastTreeModel):
    """PIM-SM-like: (*,G) shared tree rooted at the RP; optional (S,G)
    source trees after switchover; senders register-tunnel to the RP."""

    name = "pim-sm"

    def __init__(self, topo: Topology, routing: UnicastRouting, rp: str) -> None:
        super().__init__(topo, routing)
        self.rp = rp
        #: Members that switched to the source-specific tree, per source.
        self.spt_members: dict[str, set[str]] = {}

    def switch_to_spt(self, member: str, source: str) -> None:
        """Model the shared-tree -> source-tree switchover ("configure
        when traffic should split off into source-specific trees")."""
        if member not in self.members:
            raise RoutingError(f"{member} is not a group member")
        self.spt_members.setdefault(source, set()).add(member)

    def shared_tree_edges(self) -> set[frozenset]:
        return self._paths_union(self.rp, self.members)

    def source_tree_edges(self, source: str) -> set[frozenset]:
        return self._paths_union(source, self.spt_members.get(source, set()))

    def tree_edges(self) -> set[frozenset]:
        edges = self.shared_tree_edges()
        for source in self.spt_members:
            edges |= self.source_tree_edges(source)
        return edges

    def state_entries(self) -> dict[str, int]:
        """One (*,G) entry per shared-tree router, plus one (S,G) entry
        per source tree a router additionally sits on."""
        entries: dict[str, int] = {}
        for node in {n for e in self.shared_tree_edges() for n in e}:
            entries[node] = 1
        for source in self.spt_members:
            for node in {n for e in self.source_tree_edges(source) for n in e}:
                entries[node] = entries.get(node, 0) + 1
        return entries

    def delivery_path(self, source: str, member: str) -> list[str]:
        """Register leg source->RP, then shared tree RP->member — unless
        the member switched to this source's SPT."""
        if member in self.spt_members.get(source, set()):
            return self.routing.path(source, member)
        to_rp = self.routing.path(source, self.rp)
        down = self.routing.path(self.rp, member)
        return to_rp + down[1:]


class CbtModel(MulticastTreeModel):
    """CBT-like bidirectional shared tree rooted at a core."""

    name = "cbt"

    def __init__(self, topo: Topology, routing: UnicastRouting, core: str) -> None:
        super().__init__(topo, routing)
        self.core = core

    def tree_edges(self) -> set[frozenset]:
        return self._paths_union(self.core, self.members)

    def _tree_adjacency(self) -> dict[str, set[str]]:
        adjacency: dict[str, set[str]] = {}
        for edge in self.tree_edges():
            a, b = tuple(edge)
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        return adjacency

    def _tree_path(self, a: str, b: str) -> Optional[list[str]]:
        """The unique path between two on-tree nodes, if both are on."""
        adjacency = self._tree_adjacency()
        if a not in adjacency and a != b:
            return None
        # BFS over the (acyclic) tree.
        frontier = [[a]]
        seen = {a}
        while frontier:
            path = frontier.pop(0)
            if path[-1] == b:
                return path
            for nxt in sorted(adjacency.get(path[-1], ())):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(path + [nxt])
        return None

    def delivery_path(self, source: str, member: str) -> list[str]:
        """Bi-directional tree forwarding: an on-tree sender's packet
        travels straight along the tree; an off-tree sender tunnels to
        the core first."""
        on_tree = self._tree_path(source, member)
        if on_tree is not None:
            return on_tree
        to_core = self.routing.path(source, self.core)
        down = self._tree_path(self.core, member)
        if down is None:
            raise RoutingError(f"{member} is not on the CBT tree")
        return to_core + down[1:]


class DvmrpModel(MulticastTreeModel):
    """Flood-and-prune (DVMRP / PIM-DM style) for one source.

    Steady-state data flows on the source SPT, but the initial
    broadcast reaches, and prune state occupies, every router.
    """

    name = "dvmrp"

    def __init__(self, topo: Topology, routing: UnicastRouting, source: str) -> None:
        super().__init__(topo, routing)
        self.source = source

    def tree_edges(self) -> set[frozenset]:
        return self._paths_union(self.source, self.members)

    def routers_touched(self) -> set[str]:
        # Broadcast-and-prune touches the whole domain.
        return set(self.topo.nodes)

    def state_entries(self) -> dict[str, int]:
        # Every router holds either forwarding state or prune state.
        return {name: 1 for name in self.topo.nodes}

    def delivery_path(self, source: str, member: str) -> list[str]:
        if source != self.source:
            raise RoutingError(f"model is for source {self.source}")
        return self.routing.path(source, member)
