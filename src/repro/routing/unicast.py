"""Link-state unicast routing (shortest-path-first).

Every node computes shortest paths over the delay-weighted topology —
the "existing unicast topology information" that ECMP's RPF component
builds on (§3). Ties break deterministically on node name so that a
given topology always yields the same routing (and therefore the same
multicast trees), which the reproducibility of every benchmark depends
on.

The implementation runs one Dijkstra per *destination* and records each
node's parent toward that destination; ``next_hop(u, v)`` is then u's
parent in the tree rooted at v. Because links are symmetric, this
parent is exactly the RPF neighbor of u with respect to source v.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.errors import RoutingError
from repro.netsim.topology import Topology


class UnicastRouting:
    """All-pairs next-hop tables for a topology.

    Call :meth:`recompute` after any link state change; protocol agents
    that need convergence notifications register callbacks via
    :meth:`on_recompute`.
    """

    def __init__(self, topo: Topology, auto_compute: bool = True) -> None:
        self.topo = topo
        #: parent[dest][node] = next hop (neighbor name) from node toward dest
        self._parent: dict[str, dict[str, Optional[str]]] = {}
        #: dist[dest][node] = metric distance from node to dest
        self._dist: dict[str, dict[str, float]] = {}
        self._listeners: list = []
        self.recompute_count = 0
        if auto_compute:
            self.recompute()

    # -- computation -------------------------------------------------------

    def recompute(self) -> None:
        """Re-run SPF for every destination over the current (up) links."""
        self._parent.clear()
        self._dist.clear()
        adjacency = self._adjacency()
        for dest in self.topo.nodes:
            parent, dist = self._dijkstra(dest, adjacency)
            self._parent[dest] = parent
            self._dist[dest] = dist
        self.recompute_count += 1
        for listener in self._listeners:
            listener()

    def on_recompute(self, callback) -> None:
        """Register ``callback()`` to run after every recompute."""
        self._listeners.append(callback)

    def _adjacency(self) -> dict[str, list[tuple[float, str]]]:
        adjacency: dict[str, list[tuple[float, str]]] = {
            name: [] for name in self.topo.nodes
        }
        for link in self.topo.links:
            if not link.up:
                continue
            a, b = link.node_a.name, link.node_b.name
            adjacency[a].append((link.delay, b))
            adjacency[b].append((link.delay, a))
        # Sort for deterministic relaxation order.
        for edges in adjacency.values():
            edges.sort()
        return adjacency

    @staticmethod
    def _dijkstra(
        dest: str, adjacency: dict[str, list[tuple[float, str]]]
    ) -> tuple[dict[str, Optional[str]], dict[str, float]]:
        """Shortest paths from every node *to* ``dest`` (symmetric links,
        so we search outward from ``dest``); ``parent[u]`` is u's next
        hop toward ``dest``."""
        dist: dict[str, float] = {dest: 0.0}
        parent: dict[str, Optional[str]] = {dest: None}
        heap: list[tuple[float, str, Optional[str]]] = [(0.0, dest, None)]
        visited: set[str] = set()
        while heap:
            d, name, via = heapq.heappop(heap)
            if name in visited:
                continue
            visited.add(name)
            parent[name] = via
            for weight, neighbor in adjacency[name]:
                nd = d + weight
                if neighbor not in visited and nd < dist.get(neighbor, float("inf")):
                    dist[neighbor] = nd
                    # The neighbor's next hop toward dest is `name`.
                    heapq.heappush(heap, (nd, neighbor, name))
                elif (
                    neighbor not in visited
                    and nd == dist.get(neighbor)
                    and name < (parent.get(neighbor) or "￿")
                ):
                    # Equal cost: prefer the lexicographically smaller
                    # next hop for determinism.
                    heapq.heappush(heap, (nd, neighbor, name))
        return parent, dist

    # -- queries -------------------------------------------------------------

    def next_hop(self, node: str, dest: str) -> Optional[str]:
        """The neighbor name on ``node``'s shortest path toward ``dest``.

        None if ``node == dest`` or ``dest`` is unreachable.
        """
        table = self._parent.get(dest)
        if table is None:
            raise RoutingError(f"no routes computed for destination {dest!r}")
        return table.get(node)

    def reachable(self, node: str, dest: str) -> bool:
        if node == dest:
            return True
        return self.next_hop(node, dest) is not None

    def distance(self, node: str, dest: str) -> float:
        dist = self._dist.get(dest)
        if dist is None:
            raise RoutingError(f"no routes computed for destination {dest!r}")
        try:
            return dist[node]
        except KeyError:
            raise RoutingError(f"{dest!r} unreachable from {node!r}") from None

    def path(self, node: str, dest: str) -> list[str]:
        """The node sequence from ``node`` to ``dest`` inclusive."""
        hops = [node]
        current = node
        seen = {node}
        while current != dest:
            step = self.next_hop(current, dest)
            if step is None:
                raise RoutingError(f"{dest!r} unreachable from {node!r}")
            if step in seen:
                raise RoutingError(f"routing loop at {step!r} toward {dest!r}")
            hops.append(step)
            seen.add(step)
            current = step
        return hops

    def hop_count(self, node: str, dest: str) -> int:
        return len(self.path(node, dest)) - 1

    def spanning_tree_to(self, dest: str) -> dict[str, Optional[str]]:
        """The full parent map toward ``dest`` (RPF tree rooted there)."""
        table = self._parent.get(dest)
        if table is None:
            raise RoutingError(f"no routes computed for destination {dest!r}")
        return dict(table)
