"""Link-state unicast routing (shortest-path-first), incremental.

Every node computes shortest paths over the delay-weighted topology —
the "existing unicast topology information" that ECMP's RPF component
builds on (§3). Ties break deterministically on node name so that a
given topology always yields the same routing (and therefore the same
multicast trees), which the reproducibility of every benchmark depends
on.

The implementation runs one Dijkstra per *destination* and records each
node's parent toward that destination; ``next_hop(u, v)`` is then u's
parent in the tree rooted at v. Because links are symmetric, this
parent is exactly the RPF neighbor of u with respect to source v.

Incremental evaluation
----------------------
The seed implementation re-ran Dijkstra for every destination on every
:meth:`recompute` — O(V·E·logV) per link flap, which dominated
wall-clock in churn/failover scenarios. Destination trees are now

* computed **lazily**: the first query naming a destination runs that
  one Dijkstra and caches the tree for the current topology generation;
* invalidated **selectively**: :meth:`recompute` diffs the topology
  against the snapshot taken at the previous recompute and drops only
  the cached trees a changed link could actually affect — a tree is
  dirty if it routes through the link (``parent[a] == b`` or
  ``parent[b] == a``), or, for a link that came up or got faster, if
  the link would relax (or tie) a distance in that tree;
* dropped **wholesale** above a dirty-fraction threshold or on any
  structural change (nodes/links added or removed), where per-tree
  bookkeeping stops paying for itself.

The observable results — next hops, distances, tie-breaks, listener
ordering — are identical to a from-scratch recompute (the routing
equivalence property test drives randomized topologies through random
link-event sequences to enforce exactly this). ``recompute_count``
still counts :meth:`recompute` invocations; the new ``spf_runs``
counter counts actual per-destination Dijkstra executions, which is
what the churn benchmark's ≥5× saving is measured against.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Optional

from repro.errors import RoutingError
from repro.netsim.topology import Topology

#: Above this fraction of dirty cached trees, recompute drops the whole
#: cache instead of tracking per-tree dirtiness (the per-tree checks and
#: partial reuse stop being worth it when most trees changed anyway).
FULL_RECOMPUTE_DIRTY_FRACTION = 0.5


class UnicastRouting:
    """All-pairs next-hop tables for a topology, computed on demand.

    Call :meth:`recompute` after any link state change; protocol agents
    that need convergence notifications register callbacks via
    :meth:`on_recompute`.

    Counters
    --------
    recompute_count:
        Number of :meth:`recompute` invocations (the seed's semantics).
    spf_runs:
        Per-destination Dijkstra executions. The seed ran
        ``len(topo.nodes)`` of these per recompute; incremental
        evaluation runs one per (queried, invalidated) destination.
    trees_invalidated / trees_retained:
        Cached trees dropped vs. kept across recomputes.
    full_invalidations / partial_invalidations:
        Recomputes that dropped the whole cache vs. only dirty trees.
    """

    def __init__(self, topo: Topology, auto_compute: bool = True, obs=None) -> None:
        self.topo = topo
        #: parent[dest][node] = next hop (neighbor name) from node toward dest
        self._parent: dict[str, dict[str, Optional[str]]] = {}
        #: dist[dest][node] = metric distance from node to dest
        self._dist: dict[str, dict[str, float]] = {}
        self._listeners: list = []
        self.recompute_count = 0
        self.spf_runs = 0
        self.trees_invalidated = 0
        self.trees_retained = 0
        self.full_invalidations = 0
        self.partial_invalidations = 0
        #: Bumped on every invalidation; lets external caches (RPF
        #: memos, FIB helpers) cheaply detect staleness.
        self.generation = 0
        self._adjacency: Optional[dict[str, list[tuple[float, str]]]] = None
        #: Link-state snapshot at the last recompute:
        #: [(name_a, name_b, up, delay), ...] in topo.links order.
        self._link_snapshot: Optional[list[tuple[str, str, bool, float]]] = None
        self._node_snapshot: Optional[frozenset] = None
        self._m_spf_seconds = None
        self._m_spf_trees = None
        if obs is not None:
            registry = obs.registry
            self._m_spf_seconds = registry.histogram(
                "spf_recompute_seconds",
                "Wall-clock seconds spent per routing recompute "
                "(invalidation only; tree fills are lazy)",
                buckets=(1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0),
            )
            self._m_spf_trees = registry.counter(
                "spf_tree_computations_total",
                "Per-destination Dijkstra tree computations",
            )
        if auto_compute:
            self.recompute()

    # -- computation -------------------------------------------------------

    def recompute(self) -> None:
        """Revalidate routing for the current (up) links.

        Drops cached destination trees a topology change could have
        affected; trees are re-derived lazily as queries arrive. From
        the caller's perspective this is the seed's "re-run SPF for
        every destination" — results are indistinguishable.
        """
        started = perf_counter() if self._m_spf_seconds is not None else 0.0
        snapshot = self._take_snapshot()
        nodes = frozenset(self.topo.nodes)
        if (
            self._link_snapshot is None
            or self._node_snapshot != nodes
            or len(self._link_snapshot) != len(snapshot)
        ):
            self._invalidate_all()
        else:
            changed = [
                (old, new)
                for old, new in zip(self._link_snapshot, snapshot)
                if old != new
            ]
            if changed:
                self._invalidate_dirty(changed)
        self._link_snapshot = snapshot
        self._node_snapshot = nodes
        self.recompute_count += 1
        if self._m_spf_seconds is not None:
            self._m_spf_seconds.observe(perf_counter() - started)
        for listener in self._listeners:
            listener()

    def on_recompute(self, callback) -> None:
        """Register ``callback()`` to run after every recompute."""
        self._listeners.append(callback)

    def _take_snapshot(self) -> list[tuple[str, str, bool, float]]:
        return [
            (link.node_a.name, link.node_b.name, link.up, link.delay)
            for link in self.topo.links
        ]

    def _invalidate_all(self) -> None:
        self.trees_invalidated += len(self._parent)
        self._parent.clear()
        self._dist.clear()
        self._adjacency = None
        self.generation += 1
        self.full_invalidations += 1

    def _invalidate_dirty(
        self,
        changed: list[
            tuple[tuple[str, str, bool, float], tuple[str, str, bool, float]]
        ],
    ) -> None:
        """Drop cached trees a changed link could affect.

        For each cached destination tree, a change to link (a, b) is
        relevant if the tree routes through the link — ``parent[a] == b``
        or ``parent[b] == a`` — which covers links that went down or got
        slower. A link that came (or stayed) up additionally dirties any
        tree whose distances it could relax *or tie* under its new delay
        (``dist[a] >= dist[b] + delay`` in either direction; ties matter
        because the lexicographic tie-break may now pick the new edge).
        Unreachable endpoints count as infinitely far, so a link joining
        two partitions always dirties.
        """
        inf = float("inf")
        dirty: list[str] = []
        for dest, parent in self._parent.items():
            dist = self._dist[dest]
            for (_, _, _, _), (a, b, up, delay) in changed:
                if parent.get(a) == b or parent.get(b) == a:
                    dirty.append(dest)
                    break
                if up:
                    da = dist.get(a, inf)
                    db = dist.get(b, inf)
                    if da >= db + delay or db >= da + delay:
                        dirty.append(dest)
                        break
        cached = len(self._parent)
        if cached and len(dirty) > cached * FULL_RECOMPUTE_DIRTY_FRACTION:
            self._invalidate_all()
            return
        for dest in dirty:
            del self._parent[dest]
            del self._dist[dest]
        self.trees_invalidated += len(dirty)
        self.trees_retained += cached - len(dirty)
        self._adjacency = None
        self.generation += 1
        self.partial_invalidations += 1

    def _tree(self, dest: str) -> dict[str, Optional[str]]:
        """The (cached or freshly computed) parent map toward ``dest``."""
        table = self._parent.get(dest)
        if table is not None:
            return table
        if self._link_snapshot is None or dest not in self.topo.nodes:
            raise RoutingError(f"no routes computed for destination {dest!r}")
        if self._adjacency is None:
            self._adjacency = self._build_adjacency()
        table, dist = self._dijkstra(dest, self._adjacency)
        self._parent[dest] = table
        self._dist[dest] = dist
        self.spf_runs += 1
        if self._m_spf_trees is not None:
            self._m_spf_trees.inc()
        return table

    def _dist_map(self, dest: str) -> dict[str, float]:
        self._tree(dest)
        return self._dist[dest]

    def _build_adjacency(self) -> dict[str, list[tuple[float, str]]]:
        adjacency: dict[str, list[tuple[float, str]]] = {
            name: [] for name in self.topo.nodes
        }
        for link in self.topo.links:
            if not link.up:
                continue
            a, b = link.node_a.name, link.node_b.name
            adjacency[a].append((link.delay, b))
            adjacency[b].append((link.delay, a))
        # Sort for deterministic relaxation order.
        for edges in adjacency.values():
            edges.sort()
        return adjacency

    @staticmethod
    def _dijkstra(
        dest: str, adjacency: dict[str, list[tuple[float, str]]]
    ) -> tuple[dict[str, Optional[str]], dict[str, float]]:
        """Shortest paths from every node *to* ``dest`` (symmetric links,
        so we search outward from ``dest``); ``parent[u]`` is u's next
        hop toward ``dest``."""
        dist: dict[str, float] = {dest: 0.0}
        parent: dict[str, Optional[str]] = {dest: None}
        heap: list[tuple[float, str, Optional[str]]] = [(0.0, dest, None)]
        visited: set[str] = set()
        while heap:
            d, name, via = heapq.heappop(heap)
            if name in visited:
                continue
            visited.add(name)
            parent[name] = via
            for weight, neighbor in adjacency[name]:
                nd = d + weight
                if neighbor not in visited and nd < dist.get(neighbor, float("inf")):
                    dist[neighbor] = nd
                    # The neighbor's next hop toward dest is `name`.
                    heapq.heappush(heap, (nd, neighbor, name))
                elif (
                    neighbor not in visited
                    and nd == dist.get(neighbor)
                    and name < (parent.get(neighbor) or "￿")
                ):
                    # Equal cost: prefer the lexicographically smaller
                    # next hop for determinism.
                    heapq.heappush(heap, (nd, neighbor, name))
        return parent, dist

    # -- queries -------------------------------------------------------------

    def next_hop(self, node: str, dest: str) -> Optional[str]:
        """The neighbor name on ``node``'s shortest path toward ``dest``.

        None if ``node == dest`` or ``dest`` is unreachable.
        """
        return self._tree(dest).get(node)

    def reachable(self, node: str, dest: str) -> bool:
        if node == dest:
            return True
        return self.next_hop(node, dest) is not None

    def distance(self, node: str, dest: str) -> float:
        dist = self._dist_map(dest)
        try:
            return dist[node]
        except KeyError:
            raise RoutingError(f"{dest!r} unreachable from {node!r}") from None

    def path(self, node: str, dest: str) -> list[str]:
        """The node sequence from ``node`` to ``dest`` inclusive."""
        table = self._tree(dest)
        hops = [node]
        current = node
        seen = {node}
        while current != dest:
            step = table.get(current)
            if step is None:
                raise RoutingError(f"{dest!r} unreachable from {node!r}")
            if step in seen:
                raise RoutingError(f"routing loop at {step!r} toward {dest!r}")
            hops.append(step)
            seen.add(step)
            current = step
        return hops

    def hop_count(self, node: str, dest: str) -> int:
        return len(self.path(node, dest)) - 1

    def spanning_tree_to(self, dest: str) -> dict[str, Optional[str]]:
        """The full parent map toward ``dest`` (RPF tree rooted there)."""
        return dict(self._tree(dest))

    # -- diagnostics ---------------------------------------------------------

    def cached_destinations(self) -> int:
        """Destination trees currently materialized (observability)."""
        return len(self._parent)

    def spf_counters(self) -> dict[str, int]:
        """The incremental-SPF counters as a plain dict (benchmarks)."""
        return {
            "recompute_count": self.recompute_count,
            "spf_runs": self.spf_runs,
            "trees_invalidated": self.trees_invalidated,
            "trees_retained": self.trees_retained,
            "full_invalidations": self.full_invalidations,
            "partial_invalidations": self.partial_invalidations,
            "cached_destinations": len(self._parent),
            "generation": self.generation,
        }
