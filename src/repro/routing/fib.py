"""The multicast Forwarding Information Base.

Figure 5 of the paper defines the EXPRESS FIB entry: 32-bit source
address, 24-bit channel destination suffix (the low bits of the 232/8
address), 5-bit incoming interface, and a 32-bit outgoing-interface
bitmap — 93 bits, stored in 12 bytes. "The FIB entry ... must be
consulted for every multicast packet. Because of this, FIB memory is
generally the most expensive memory in a high-performance router"
(§5.1), which is why the cost model of Figure 6 and the ``FIG5``/
``FIG6`` benchmarks key off this exact size.

:class:`MulticastFib` is the data-plane table: exact ``(S, E)`` match,
incoming-interface check, fanout to the outgoing set, and the paper's
"counted and dropped" behaviour for non-matching EXPRESS packets
(§3.4) — never forwarded to a rendezvous point, never broadcast.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import ForwardingError
from repro.inet.addr import channel_suffix, format_address, is_ssm, ssm_address
from repro.netsim.node import MAX_INTERFACES

#: Exact wire size of one EXPRESS FIB entry (Figure 5).
FIB_ENTRY_BYTES = 12

_PACK = struct.Struct("!I3sBI")


@dataclass
class FibEntry:
    """One EXPRESS forwarding entry.

    Attributes
    ----------
    source:
        32-bit unicast source address S.
    dest_suffix:
        24-bit channel number (low bits of the 232/8 destination E).
    incoming_interface:
        RPF interface index toward S (5 bits; <= 31).
    outgoing:
        Bitmap of interfaces to forward matching packets out of.
    """

    source: int
    dest_suffix: int
    incoming_interface: int
    outgoing: int = 0

    #: Owning :class:`MulticastFib` (set by ``install``); lets attribute
    #: writes invalidate the fib's interned lookup results.
    _owner = None
    #: Memoized ``outgoing_interfaces()`` result; any write to
    #: ``outgoing`` clears it (see ``__setattr__``).
    _oif_list = None

    def __setattr__(self, name: str, value) -> None:
        object.__setattr__(self, name, value)
        # Catch *every* mutation path — the protocol layer assigns
        # ``entry.outgoing = 0`` / ``entry.incoming_interface = iif``
        # directly when re-syncing, not only via the bitmap helpers.
        if name == "outgoing" or name == "incoming_interface":
            object.__setattr__(self, "_oif_list", None)
            owner = self._owner
            if owner is not None:
                owner._invalidate_lookups()

    def __post_init__(self) -> None:
        if not 0 <= self.source <= 0xFFFFFFFF:
            raise ForwardingError(f"source {self.source:#x} not 32-bit")
        if not 0 <= self.dest_suffix < (1 << 24):
            raise ForwardingError(f"dest suffix {self.dest_suffix:#x} not 24-bit")
        if not 0 <= self.incoming_interface < MAX_INTERFACES:
            raise ForwardingError(
                f"incoming interface {self.incoming_interface} exceeds 5-bit field"
            )
        if not 0 <= self.outgoing <= 0xFFFFFFFF:
            raise ForwardingError(f"outgoing bitmap {self.outgoing:#x} not 32-bit")

    # -- bitmap helpers ------------------------------------------------------

    def add_outgoing(self, ifindex: int) -> None:
        self._check_if(ifindex)
        self.outgoing |= 1 << ifindex

    def remove_outgoing(self, ifindex: int) -> None:
        self._check_if(ifindex)
        self.outgoing &= ~(1 << ifindex)

    def has_outgoing(self, ifindex: int) -> bool:
        self._check_if(ifindex)
        return bool(self.outgoing & (1 << ifindex))

    def outgoing_interfaces(self) -> list[int]:
        """The interned outgoing-interface list (do not mutate)."""
        cached = self._oif_list
        if cached is None:
            cached = [i for i in range(MAX_INTERFACES) if self.outgoing & (1 << i)]
            object.__setattr__(self, "_oif_list", cached)
        return cached

    def fanout(self) -> int:
        return bin(self.outgoing).count("1")

    @staticmethod
    def _check_if(ifindex: int) -> None:
        if not 0 <= ifindex < MAX_INTERFACES:
            raise ForwardingError(f"interface {ifindex} out of bitmap range")

    # -- wire format (Figure 5) ------------------------------------------------

    def pack(self) -> bytes:
        """Pack to the exact 12-byte layout of Figure 5.

        Layout: 4 bytes source | 3 bytes dest suffix | 1 byte holding
        the 5-bit incoming interface (high bits; low 3 bits pad) |
        4 bytes outgoing bitmap.
        """
        dest_bytes = self.dest_suffix.to_bytes(3, "big")
        iif_byte = (self.incoming_interface & 0x1F) << 3
        return _PACK.pack(self.source, dest_bytes, iif_byte, self.outgoing)

    @classmethod
    def unpack(cls, data: bytes) -> "FibEntry":
        if len(data) != FIB_ENTRY_BYTES:
            raise ForwardingError(
                f"FIB entry must be {FIB_ENTRY_BYTES} bytes, got {len(data)}"
            )
        source, dest_bytes, iif_byte, outgoing = _PACK.unpack(data)
        return cls(
            source=source,
            dest_suffix=int.from_bytes(dest_bytes, "big"),
            incoming_interface=iif_byte >> 3,
            outgoing=outgoing,
        )

    @property
    def dest_address(self) -> int:
        """The full 232/8 destination address E."""
        return ssm_address(self.dest_suffix)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FibEntry ({format_address(self.source)},"
            f"{format_address(self.dest_address)}) iif={self.incoming_interface}"
            f" oif={self.outgoing_interfaces()}>"
        )


#: Interned empty result shared by every drop path (do not mutate).
_NO_OIFS: list[int] = []

#: Lookup-cache size guard: adversarial workloads (spoof floods with
#: random (S, E)) would otherwise grow the cache without bound.
_LOOKUP_CACHE_MAX = 4096


class MulticastFib:
    """Exact-match (S, E) forwarding table for one router.

    Data-plane lookups intern their results: repeated packets for the
    same ``(S, E, iif)`` triple — the steady-state common case — reuse
    one cached verdict and one shared outgoing-interface list instead
    of re-validating the destination and rebuilding the list per
    packet. Any table or entry mutation invalidates the cache; the
    drop counters stay exact on cache hits.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[int, int], FibEntry] = {}
        #: §3.4: a packet matching no entry "is simply counted and dropped".
        self.no_match_drops = 0
        #: Incoming-interface check failures (loop prevention).
        self.iif_drops = 0
        self.lookups = 0
        #: (source, dest, iif) -> ("ok" | "no_match" | "iif", oif list)
        self._lookup_cache: dict[tuple[int, int, int], tuple[str, list[int]]] = {}
        self.lookup_cache_hits = 0

    def _invalidate_lookups(self) -> None:
        if self._lookup_cache:
            self._lookup_cache.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[FibEntry]:
        return iter(self._entries.values())

    @staticmethod
    def _key(source: int, dest: int) -> tuple[int, int]:
        if not is_ssm(dest):
            raise ForwardingError(
                f"{format_address(dest)} is not an EXPRESS destination"
            )
        return (source, channel_suffix(dest))

    def install(self, source: int, dest: int, incoming_interface: int) -> FibEntry:
        """Create (or return the existing) entry for channel (S, E)."""
        key = self._key(source, dest)
        entry = self._entries.get(key)
        if entry is None:
            entry = FibEntry(
                source=source,
                dest_suffix=key[1],
                incoming_interface=incoming_interface,
            )
            entry._owner = self
            self._entries[key] = entry
            self._invalidate_lookups()
        return entry

    def remove(self, source: int, dest: int) -> bool:
        """Delete the entry for (S, E); True if it existed."""
        entry = self._entries.pop(self._key(source, dest), None)
        if entry is None:
            return False
        entry._owner = None
        self._invalidate_lookups()
        return True

    def get(self, source: int, dest: int) -> Optional[FibEntry]:
        return self._entries.get(self._key(source, dest))

    def lookup(self, source: int, dest: int, arriving_ifindex: int) -> list[int]:
        """Data-plane lookup: the outgoing interface list for a packet,
        after the exact-match and incoming-interface checks.

        Returns an empty list (and bumps the drop counters) for packets
        that must be dropped. This mirrors the §3.4 fast path: no
        rendezvous fallback, no broadcast.
        """
        self.lookups += 1
        cache_key = (source, dest, arriving_ifindex)
        hit = self._lookup_cache.get(cache_key)
        if hit is not None:
            self.lookup_cache_hits += 1
            verdict, oifs = hit
            if verdict == "no_match":
                self.no_match_drops += 1
            elif verdict == "iif":
                self.iif_drops += 1
            return oifs
        entry = self._entries.get(self._key(source, dest))
        if len(self._lookup_cache) >= _LOOKUP_CACHE_MAX:
            self._lookup_cache.clear()
        if entry is None:
            self.no_match_drops += 1
            self._lookup_cache[cache_key] = ("no_match", _NO_OIFS)
            return _NO_OIFS
        if entry.incoming_interface != arriving_ifindex:
            self.iif_drops += 1
            self._lookup_cache[cache_key] = ("iif", _NO_OIFS)
            return _NO_OIFS
        oifs = entry.outgoing_interfaces()
        self._lookup_cache[cache_key] = ("ok", oifs)
        return oifs

    def memory_bytes(self) -> int:
        """Fast-path memory footprint at Figure 5's 12 bytes/entry."""
        return len(self._entries) * FIB_ENTRY_BYTES

    def channels(self) -> list[tuple[int, int]]:
        """All (source, dest_address) pairs with entries installed."""
        return [(s, ssm_address(e)) for (s, e) in self._entries]
