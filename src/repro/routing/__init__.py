"""Routing substrates.

ECMP's routing component "relies on, and scales with, existing unicast
topology information" (§3): subscriptions travel hop-by-hop along
reverse-path-forwarding (RPF) routes toward the source. This package
provides that unicast substrate (link-state shortest-path routing), the
RPF helpers, the multicast FIB with the paper's exact 12-byte entry
format (Figure 5), and control-plane models of the baseline multicast
protocols the paper compares against (PIM-SM, CBT, DVMRP-style
flood-and-prune).
"""

from repro.routing.fib import FIB_ENTRY_BYTES, FibEntry, MulticastFib
from repro.routing.rpf import rpf_check, rpf_interface, rpf_neighbor
from repro.routing.unicast import UnicastRouting

__all__ = [
    "FIB_ENTRY_BYTES",
    "FibEntry",
    "MulticastFib",
    "UnicastRouting",
    "rpf_check",
    "rpf_interface",
    "rpf_neighbor",
]
