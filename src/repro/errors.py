"""Exception hierarchy for the EXPRESS reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch one base type. Protocol-level rejections that the paper models
as in-band ``CountResponse`` statuses (e.g. a bad channel key) are *not*
exceptions on the wire -- they surface as exceptions only when the local
API call itself is invalid.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class TopologyError(ReproError):
    """The topology is malformed (unknown node, duplicate link, ...)."""


class AddressError(ReproError):
    """An IPv4/multicast address is malformed or out of range."""


class ChannelError(ReproError):
    """A channel (S, E) tuple is invalid for the EXPRESS model."""


class CodecError(ReproError):
    """A wire message failed to encode or decode."""


class RoutingError(ReproError):
    """Unicast or multicast routing state is inconsistent."""


class ForwardingError(ReproError):
    """The data-plane forwarding engine was driven incorrectly."""


class ProtocolError(ReproError):
    """An ECMP/IGMP/PIM state machine received an impossible input."""


class AuthError(ReproError):
    """A channel-key operation is invalid (not an on-wire rejection)."""


class RelayError(ReproError):
    """Session-relay middleware misuse (unknown session, no floor, ...)."""


class WorkloadError(ReproError):
    """A workload/scenario generator was configured inconsistently."""


class FaultError(ReproError):
    """A fault plan or injector was configured inconsistently."""
