"""IPv4 address arithmetic.

Addresses are plain 32-bit integers throughout the library (cheap to
hash, compare, and pack into the 12-byte FIB entry of Figure 5). This
module provides parsing/formatting and the class-D / single-source
range predicates from the paper's Figure 2:

* class D (multicast): 224.0.0.0 – 239.255.255.255
* single-source (EXPRESS / SSM): 232.0.0.0/8, giving each source host
  2^24 channel destination addresses it can allocate autonomously.
"""

from __future__ import annotations

from repro.errors import AddressError

#: Full class-D multicast range (224.0.0.0 ... 239.255.255.255).
CLASS_D_FIRST = 0xE0000000
CLASS_D_LAST = 0xEFFFFFFF

#: Single-source multicast range (232.0.0.0/8), per IANA allocation.
SSM_FIRST = 0xE8000000
SSM_LAST = 0xE8FFFFFF

#: Number of channels each source can allocate ("16 million channels").
CHANNELS_PER_SOURCE = 1 << 24

_MAX_ADDRESS = 0xFFFFFFFF


def parse_address(text: str) -> int:
    """Parse dotted-quad ``text`` into a 32-bit integer.

    >>> hex(parse_address("232.0.0.1"))
    '0xe8000001'
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"malformed IPv4 address {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"malformed IPv4 address {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_address(address: int) -> str:
    """Format a 32-bit integer as a dotted quad.

    >>> format_address(0xE8000001)
    '232.0.0.1'
    """
    _check_range(address)
    return ".".join(str((address >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def is_class_d(address: int) -> bool:
    """True if ``address`` is any IPv4 multicast (class D) address."""
    _check_range(address)
    return CLASS_D_FIRST <= address <= CLASS_D_LAST


def is_ssm(address: int) -> bool:
    """True if ``address`` is in the single-source 232/8 range."""
    _check_range(address)
    return SSM_FIRST <= address <= SSM_LAST


def is_unicast(address: int) -> bool:
    """True if ``address`` is an ordinary (non-class-D, non-reserved-E)
    unicast address."""
    _check_range(address)
    return address < CLASS_D_FIRST


def channel_suffix(address: int) -> int:
    """The low 24 bits of an SSM destination — the per-source channel
    number stored in the FIB entry's 24-bit ``dest`` field (Figure 5)."""
    if not is_ssm(address):
        raise AddressError(
            f"{format_address(address)} is not in the single-source range"
        )
    return address & 0x00FFFFFF


def ssm_address(suffix: int) -> int:
    """Build the SSM destination address 232.x.y.z for ``suffix``.

    >>> format_address(ssm_address(1))
    '232.0.0.1'
    """
    if not 0 <= suffix < CHANNELS_PER_SOURCE:
        raise AddressError(f"channel suffix {suffix} out of 24-bit range")
    return SSM_FIRST | suffix


def _check_range(address: int) -> None:
    if not 0 <= address <= _MAX_ADDRESS:
        raise AddressError(f"address {address!r} is not a 32-bit value")
