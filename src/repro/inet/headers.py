"""IPv4 and UDP header codecs.

The simulator moves packets as Python objects, but the wire-format
codecs matter for two reasons: (1) the control-bandwidth analyses in
§5.3 are in real bytes ("92 16-byte Count messages fit in a 1480-byte
maximum-sized TCP segment on Ethernet"), and (2) the FIB entry format
(Figure 5) is defined at the bit level. These structs give the tests
and benchmarks a ground truth for sizes and layouts.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import CodecError

#: Ethernet MTU payload available to IP.
ETHERNET_MTU = 1500
#: MSS used by the paper: 1500 - 20 (IP)  == 1480 bytes of TCP segment.
ETHERNET_TCP_SEGMENT = 1480

IPV4_HEADER_LEN = 20
UDP_HEADER_LEN = 8

_IPV4_STRUCT = struct.Struct("!BBHHHBBHII")
_UDP_STRUCT = struct.Struct("!HHHH")


def internet_checksum(data: bytes) -> int:
    """RFC 1071 internet checksum (one's-complement sum of 16-bit words)."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass
class IPv4Header:
    """A minimal IPv4 header (no options).

    ``total_length`` covers header plus payload, as on the wire.
    """

    src: int
    dst: int
    proto: int
    total_length: int = IPV4_HEADER_LEN
    ttl: int = 64
    identification: int = 0
    dscp: int = 0

    def pack(self) -> bytes:
        if not 0 <= self.total_length <= 0xFFFF:
            raise CodecError(f"total_length {self.total_length} out of range")
        if not 0 <= self.ttl <= 255:
            raise CodecError(f"ttl {self.ttl} out of range")
        version_ihl = (4 << 4) | (IPV4_HEADER_LEN // 4)
        without_checksum = _IPV4_STRUCT.pack(
            version_ihl,
            self.dscp,
            self.total_length,
            self.identification,
            0,  # flags/fragment offset: never fragmented in this model
            self.ttl,
            self.proto,
            0,  # checksum placeholder
            self.src,
            self.dst,
        )
        checksum = internet_checksum(without_checksum)
        return without_checksum[:10] + struct.pack("!H", checksum) + without_checksum[12:]

    @classmethod
    def unpack(cls, data: bytes) -> "IPv4Header":
        if len(data) < IPV4_HEADER_LEN:
            raise CodecError(f"IPv4 header truncated: {len(data)} bytes")
        fields = _IPV4_STRUCT.unpack(data[:IPV4_HEADER_LEN])
        version_ihl = fields[0]
        if version_ihl >> 4 != 4:
            raise CodecError(f"not IPv4 (version {version_ihl >> 4})")
        if internet_checksum(data[:IPV4_HEADER_LEN]) != 0:
            raise CodecError("IPv4 header checksum mismatch")
        return cls(
            src=fields[8],
            dst=fields[9],
            proto=fields[6],
            total_length=fields[2],
            ttl=fields[5],
            identification=fields[3],
            dscp=fields[1],
        )


@dataclass
class UDPHeader:
    """A UDP header; checksum computed over header+payload only (the
    pseudo-header is omitted — sufficient for simulation ground truth)."""

    src_port: int
    dst_port: int
    length: int = UDP_HEADER_LEN

    def pack(self, payload: bytes = b"") -> bytes:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise CodecError(f"port {port} out of range")
        length = UDP_HEADER_LEN + len(payload)
        if length > 0xFFFF:
            raise CodecError(f"UDP datagram too large: {length}")
        without_checksum = _UDP_STRUCT.pack(self.src_port, self.dst_port, length, 0)
        checksum = internet_checksum(without_checksum + payload)
        if checksum == 0:
            checksum = 0xFFFF
        return _UDP_STRUCT.pack(self.src_port, self.dst_port, length, checksum) + payload

    @classmethod
    def unpack(cls, data: bytes) -> tuple["UDPHeader", bytes]:
        if len(data) < UDP_HEADER_LEN:
            raise CodecError(f"UDP header truncated: {len(data)} bytes")
        src_port, dst_port, length, checksum = _UDP_STRUCT.unpack(data[:UDP_HEADER_LEN])
        if length < UDP_HEADER_LEN or length > len(data):
            raise CodecError(f"UDP length field {length} inconsistent")
        payload = data[UDP_HEADER_LEN:length]
        if checksum != 0:
            verify = _UDP_STRUCT.pack(src_port, dst_port, length, 0) + payload
            expected = internet_checksum(verify)
            if expected == 0:
                expected = 0xFFFF
            if checksum != expected:
                raise CodecError("UDP checksum mismatch")
        header = cls(src_port=src_port, dst_port=dst_port, length=length)
        return header, payload
