"""IGMP host membership for conventional class-D groups.

The paper keeps IGMP in the picture twice: hosts "can continue to use
IGMP for the rest of the class D address space" (§3.6), and ECMP's
UDP mode is explicitly modelled on IGMP query/report behaviour —
"Unlike IGMPv2, but like the proposed IGMPv3, there is no report
suppression" (§3.2). This module implements:

* **IGMPv2** — periodic general queries, randomized report delays,
  report suppression, leave + group-specific re-query; and
* **IGMPv3-lite** — per-group source-filter state (INCLUDE/EXCLUDE
  lists, §7.1's comparison point for EXPRESS access control), without
  report suppression.

LAN model: the library's LAN topologies are stars of point-to-point
links, so the router agent *reflects* every report to all other host
ports — observationally equivalent to reports being multicast on a
shared segment, which is what v2 suppression relies on.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.errors import CodecError, ProtocolError
from repro.inet.addr import is_class_d
from repro.netsim.engine import PeriodicTask
from repro.netsim.node import Node, ProtocolAgent
from repro.netsim.packet import Packet

PROTO_IGMP = "igmp"

#: Default timers, after RFC 2236.
QUERY_INTERVAL = 125.0
MAX_RESPONSE_TIME = 10.0
LAST_MEMBER_QUERY_INTERVAL = 1.0
ROBUSTNESS = 2
GROUP_MEMBERSHIP_INTERVAL = ROBUSTNESS * QUERY_INTERVAL + MAX_RESPONSE_TIME


class IgmpType(Enum):
    """IGMP message types (v2 wire values; v3 report is 0x22)."""

    MEMBERSHIP_QUERY = 0x11
    V2_REPORT = 0x16
    V2_LEAVE = 0x17
    V3_REPORT = 0x22


class FilterMode(Enum):
    """IGMPv3 source-filter modes."""

    INCLUDE = 1
    EXCLUDE = 2


@dataclass
class IgmpMessage:
    """An IGMP message; ``group == 0`` in a query means general query.

    ``sources``/``filter_mode`` are only meaningful for v3 reports.
    """

    igmp_type: IgmpType
    group: int = 0
    max_response_time: float = MAX_RESPONSE_TIME
    filter_mode: Optional[FilterMode] = None
    sources: tuple[int, ...] = ()

    WIRE_V2 = struct.Struct("!BBHI")

    def pack(self) -> bytes:
        """v2 wire format (8 bytes); v3 reports append filter records."""
        tenths = int(self.max_response_time * 10)
        if not 0 <= tenths <= 255:
            raise CodecError(f"max response time {self.max_response_time} unencodable")
        head = self.WIRE_V2.pack(self.igmp_type.value, tenths, 0, self.group)
        if self.igmp_type is not IgmpType.V3_REPORT:
            return head
        mode = self.filter_mode.value if self.filter_mode else 0
        body = struct.pack("!BBH", mode, 0, len(self.sources))
        body += b"".join(struct.pack("!I", s) for s in self.sources)
        return head + body

    @classmethod
    def unpack(cls, data: bytes) -> "IgmpMessage":
        if len(data) < cls.WIRE_V2.size:
            raise CodecError(f"IGMP message truncated: {len(data)} bytes")
        type_value, tenths, _checksum, group = cls.WIRE_V2.unpack(data[: cls.WIRE_V2.size])
        try:
            igmp_type = IgmpType(type_value)
        except ValueError:
            raise CodecError(f"unknown IGMP type {type_value:#x}") from None
        message = cls(
            igmp_type=igmp_type,
            group=group,
            max_response_time=tenths / 10.0,
        )
        if igmp_type is IgmpType.V3_REPORT:
            rest = data[cls.WIRE_V2.size :]
            if len(rest) < 4:
                raise CodecError("IGMPv3 report missing filter record")
            mode, _reserved, nsources = struct.unpack("!BBH", rest[:4])
            message.filter_mode = FilterMode(mode)
            offset = 4
            sources = []
            for _ in range(nsources):
                if offset + 4 > len(rest):
                    raise CodecError("IGMPv3 report source list truncated")
                (source,) = struct.unpack("!I", rest[offset : offset + 4])
                sources.append(source)
                offset += 4
            message.sources = tuple(sources)
        return message

    def wire_size(self) -> int:
        return len(self.pack())


@dataclass
class _HostGroupState:
    """Per-group state on a host: pending report timer + v3 filter."""

    filter_mode: FilterMode = FilterMode.EXCLUDE
    sources: tuple[int, ...] = ()
    pending_report: Optional[object] = None  # netsim Event


class IgmpHostAgent(ProtocolAgent):
    """Host-side IGMP.

    ``version=2`` gives suppression semantics; ``version=3`` adds source
    filters and disables suppression.
    """

    def __init__(self, node: Node, version: int = 2) -> None:
        super().__init__(node)
        if version not in (2, 3):
            raise ProtocolError(f"unsupported IGMP version {version}")
        self.version = version
        self.memberships: dict[int, _HostGroupState] = {}
        self.reports_sent = 0
        self.reports_suppressed = 0

    # -- application API ---------------------------------------------------

    def join(
        self,
        group: int,
        filter_mode: FilterMode = FilterMode.EXCLUDE,
        sources: tuple[int, ...] = (),
    ) -> None:
        """Join ``group``; v3 callers may supply a source filter.

        ``EXCLUDE ()`` is "receive from anyone" (classic join);
        ``INCLUDE (S,...)`` is a source-specific subscription — the
        IGMPv3 feature §7.1 contrasts with EXPRESS's single source.
        """
        if not is_class_d(group):
            raise ProtocolError(f"{group:#x} is not a multicast group")
        if self.version == 2 and (sources or filter_mode is FilterMode.INCLUDE):
            raise ProtocolError("source filters need IGMP version 3")
        self.memberships[group] = _HostGroupState(filter_mode=filter_mode, sources=sources)
        self._send_report(group)

    def leave(self, group: int) -> None:
        state = self.memberships.pop(group, None)
        if state is None:
            return
        if state.pending_report is not None:
            state.pending_report.cancel()
        if self.version == 2:
            self._send(IgmpMessage(IgmpType.V2_LEAVE, group=group))
        else:
            # v3 expresses leave as a state change to INCLUDE ().
            self._send(
                IgmpMessage(
                    IgmpType.V3_REPORT,
                    group=group,
                    filter_mode=FilterMode.INCLUDE,
                    sources=(),
                )
            )

    def is_member(self, group: int) -> bool:
        return group in self.memberships

    # -- protocol ------------------------------------------------------------

    def handle_packet(self, packet: Packet, ifindex: int) -> None:
        message = packet.headers.get("igmp")
        if not isinstance(message, IgmpMessage):
            return
        if message.igmp_type is IgmpType.MEMBERSHIP_QUERY:
            self._handle_query(message)
        elif message.igmp_type is IgmpType.V2_REPORT and self.version == 2:
            self._handle_overheard_report(message)

    def _handle_query(self, message: IgmpMessage) -> None:
        groups = list(self.memberships) if message.group == 0 else [message.group]
        for group in groups:
            state = self.memberships.get(group)
            if state is None or state.pending_report is not None:
                continue
            delay = self.sim.rng.uniform(0, message.max_response_time)
            state.pending_report = self.sim.schedule(
                delay, lambda g=group: self._report_fired(g), name="igmp-report"
            )

    def _handle_overheard_report(self, message: IgmpMessage) -> None:
        """v2 suppression: cancel our pending report if another member
        of the group reported first."""
        state = self.memberships.get(message.group)
        if state is not None and state.pending_report is not None:
            state.pending_report.cancel()
            state.pending_report = None
            self.reports_suppressed += 1

    def _report_fired(self, group: int) -> None:
        state = self.memberships.get(group)
        if state is None:
            return
        state.pending_report = None
        self._send_report(group)

    def _send_report(self, group: int) -> None:
        state = self.memberships.get(group)
        if state is None:
            return
        if self.version == 2:
            message = IgmpMessage(IgmpType.V2_REPORT, group=group)
        else:
            message = IgmpMessage(
                IgmpType.V3_REPORT,
                group=group,
                filter_mode=state.filter_mode,
                sources=state.sources,
            )
        self.reports_sent += 1
        self._send(message)

    def _send(self, message: IgmpMessage) -> None:
        packet = Packet(
            src=self.node.address,
            dst=message.group,
            proto=PROTO_IGMP,
            size=20 + message.wire_size(),
            created_at=self.sim.now,
        )
        packet.headers["igmp"] = message
        for iface in self.node.interfaces:
            self.node.send(packet.copy(), iface.index)


@dataclass
class _RouterGroupState:
    """Per-group membership state on the querier."""

    expires_at: float = 0.0
    filter_mode: FilterMode = FilterMode.EXCLUDE
    include_sources: set[int] = field(default_factory=set)
    exclude_sources: set[int] = field(default_factory=set)
    last_member_query_pending: bool = False


class IgmpRouterAgent(ProtocolAgent):
    """Querier-side IGMP on a LAN gateway.

    Tracks group membership per LAN (the whole node is treated as one
    LAN), reflects reports to the other host ports to emulate the
    shared medium, and runs leave-latency re-queries.
    """

    def __init__(self, node: Node, version: int = 2) -> None:
        super().__init__(node)
        self.version = version
        self.groups: dict[int, _RouterGroupState] = {}
        self.queries_sent = 0
        self.reports_received = 0
        self._query_task: Optional[PeriodicTask] = None

    def start(self) -> None:
        self._query_task = PeriodicTask(
            self.sim, QUERY_INTERVAL, self._general_query, name="igmp-query"
        )
        self._query_task.start()
        # Fire an initial query promptly so membership converges fast.
        self.sim.schedule(0.0, self._general_query, name="igmp-query0")

    def stop(self) -> None:
        if self._query_task is not None:
            self._query_task.stop()

    def has_members(self, group: int) -> bool:
        state = self.groups.get(group)
        return state is not None and state.expires_at > self.sim.now

    def member_sources(self, group: int) -> tuple[FilterMode, set[int]]:
        """The merged v3 filter state for ``group``."""
        state = self.groups.get(group)
        if state is None:
            return (FilterMode.INCLUDE, set())
        if state.filter_mode is FilterMode.EXCLUDE:
            return (FilterMode.EXCLUDE, set(state.exclude_sources))
        return (FilterMode.INCLUDE, set(state.include_sources))

    def handle_packet(self, packet: Packet, ifindex: int) -> None:
        message = packet.headers.get("igmp")
        if not isinstance(message, IgmpMessage):
            return
        if message.igmp_type in (IgmpType.V2_REPORT, IgmpType.V3_REPORT):
            self.reports_received += 1
            self._merge_report(message)
            if self.version == 2 and message.igmp_type is IgmpType.V2_REPORT:
                self._reflect(packet, ifindex)
        elif message.igmp_type is IgmpType.V2_LEAVE:
            self._handle_leave(message)

    def _merge_report(self, message: IgmpMessage) -> None:
        fresh = message.group not in self.groups
        state = self.groups.setdefault(message.group, _RouterGroupState())
        state.expires_at = self.sim.now + GROUP_MEMBERSHIP_INTERVAL
        if message.igmp_type is IgmpType.V3_REPORT:
            if fresh:
                # A new group adopts the first report's filter verbatim.
                state.filter_mode = message.filter_mode or FilterMode.EXCLUDE
                if state.filter_mode is FilterMode.INCLUDE:
                    state.include_sources = set(message.sources)
                else:
                    state.exclude_sources = set(message.sources)
                if message.filter_mode is FilterMode.INCLUDE and not message.sources:
                    del self.groups[message.group]
                return
            if message.filter_mode is FilterMode.INCLUDE:
                if not message.sources:
                    # INCLUDE () == leave; handled via expiry re-query.
                    self._handle_leave(message)
                    return
                if state.filter_mode is FilterMode.INCLUDE:
                    state.include_sources.update(message.sources)
                else:
                    state.exclude_sources.difference_update(message.sources)
            else:
                # Any EXCLUDE report forces the group to EXCLUDE mode; the
                # merged exclude list is the intersection (v3 merge rule).
                if state.filter_mode is FilterMode.EXCLUDE:
                    state.exclude_sources.intersection_update(message.sources)
                else:
                    state.filter_mode = FilterMode.EXCLUDE
                    state.exclude_sources = set(message.sources)

    def _handle_leave(self, message: IgmpMessage) -> None:
        state = self.groups.get(message.group)
        if state is None or state.last_member_query_pending:
            return
        # Group-specific queries; if no report refreshes membership, the
        # state times out after ROBUSTNESS * last-member interval.
        state.last_member_query_pending = True
        state.expires_at = min(
            state.expires_at,
            self.sim.now + ROBUSTNESS * LAST_MEMBER_QUERY_INTERVAL,
        )
        self._send_query(group=message.group, max_response=LAST_MEMBER_QUERY_INTERVAL)
        self.sim.schedule(
            ROBUSTNESS * LAST_MEMBER_QUERY_INTERVAL,
            lambda g=message.group: self._leave_timeout(g),
            name="igmp-leave-timeout",
        )

    def _leave_timeout(self, group: int) -> None:
        state = self.groups.get(group)
        if state is None:
            return
        state.last_member_query_pending = False
        if state.expires_at <= self.sim.now:
            del self.groups[group]

    def _general_query(self) -> None:
        self._send_query(group=0, max_response=MAX_RESPONSE_TIME)
        self._expire_groups()

    def _expire_groups(self) -> None:
        dead = [
            group
            for group, state in self.groups.items()
            if state.expires_at <= self.sim.now and not state.last_member_query_pending
        ]
        for group in dead:
            del self.groups[group]

    def _send_query(self, group: int, max_response: float) -> None:
        message = IgmpMessage(
            IgmpType.MEMBERSHIP_QUERY, group=group, max_response_time=max_response
        )
        packet = Packet(
            src=self.node.address,
            dst=group or 0xE0000001,  # all-systems group for general queries
            proto=PROTO_IGMP,
            size=20 + message.wire_size(),
            created_at=self.sim.now,
        )
        packet.headers["igmp"] = message
        self.queries_sent += 1
        for iface in self.node.interfaces:
            self.node.send(packet.copy(), iface.index)

    def _reflect(self, packet: Packet, from_ifindex: int) -> None:
        """Emulate the shared LAN: let other hosts overhear the report."""
        for iface in self.node.interfaces:
            if iface.index != from_ifindex:
                self.node.send(packet.copy(), iface.index)
