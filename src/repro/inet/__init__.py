"""IPv4 substrate: addresses, header codecs, and IGMP.

EXPRESS occupies a carved-out slice of the class-D space
(232.0.0.0/8, "2^24 class D addresses ... allocated by IANA for
experimental use by the single-source multicast model", Figure 2); the
rest of class D keeps conventional IGMP group semantics. This package
provides both the addressing arithmetic and the IGMP host-membership
protocol the paper assumes remains in use alongside ECMP.
"""

from repro.inet.addr import (
    CLASS_D_FIRST,
    CLASS_D_LAST,
    SSM_FIRST,
    SSM_LAST,
    channel_suffix,
    format_address,
    is_class_d,
    is_ssm,
    is_unicast,
    parse_address,
    ssm_address,
)
from repro.inet.headers import IPv4Header, UDPHeader, internet_checksum

__all__ = [
    "CLASS_D_FIRST",
    "CLASS_D_LAST",
    "IPv4Header",
    "SSM_FIRST",
    "SSM_LAST",
    "UDPHeader",
    "channel_suffix",
    "format_address",
    "internet_checksum",
    "is_class_d",
    "is_ssm",
    "is_unicast",
    "parse_address",
    "ssm_address",
]
