"""Multicast address allocation models.

The paper's fourth problem with the group model (§1): "the group model
requires allocating a world-wide unique multicast address to each
application ... With just 256 million multicast addresses for the whole
world, a global address allocation mechanism such as [MASC/IMAA] is
required, with all its deployment and operational issues."

EXPRESS dissolves the problem: each source owns 2^24 channel numbers
and allocates them locally (:class:`repro.core.channel.ChannelAllocator`
— zero coordination, zero round trips, collisions impossible across
hosts). This module models the *group-model* alternatives it replaces,
for the X4 benchmark:

* :class:`CoordinatedAllocator` — an always-consistent global service:
  no collisions, but every allocation pays a round trip to the
  authority and the 2^28-address pool is shared world-wide.
* :class:`UncoordinatedAllocator` — sdr-style random self-assignment:
  no service, but colliding sessions receive each other's traffic
  ("extraneous cross traffic").
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from repro.errors import AddressError
from repro.inet.addr import CLASS_D_FIRST, CLASS_D_LAST, SSM_FIRST, SSM_LAST

#: Class-D addresses usable by group-model applications: the full class
#: D space minus the single-source 232/8 carve-out (and ignoring the
#: handful of link-local reservations, which don't change the order of
#: magnitude).
GROUP_POOL_SIZE = (CLASS_D_LAST - CLASS_D_FIRST + 1) - (SSM_LAST - SSM_FIRST + 1)


def collision_probability(sessions: int, pool_size: int = GROUP_POOL_SIZE) -> float:
    """Birthday-bound probability that at least two of ``sessions``
    uncoordinated random allocations collide somewhere in the world."""
    if sessions < 0 or pool_size <= 0:
        raise AddressError("sessions >= 0 and pool_size > 0 required")
    if sessions <= 1:
        return 0.0
    exponent = -sessions * (sessions - 1) / (2.0 * pool_size)
    return 1.0 - math.exp(exponent)


@dataclass
class AllocationStats:
    requests: int = 0
    round_trips: int = 0
    collisions: int = 0
    active: int = 0


class CoordinatedAllocator:
    """A consistent global allocation authority (MASC/IMAA stand-in).

    Every allocation costs one round trip to the authority
    (``service_rtt`` seconds of latency, accumulated in the stats so
    the benchmark can report total coordination cost); the pool is
    global and finite.
    """

    def __init__(self, service_rtt: float = 0.2, pool_size: int = GROUP_POOL_SIZE) -> None:
        if service_rtt < 0 or pool_size <= 0:
            raise AddressError("service_rtt >= 0 and pool_size > 0 required")
        self.service_rtt = service_rtt
        self.pool_size = pool_size
        self._next = 0
        self._free: list[int] = []
        self._allocated: set[int] = set()
        self.stats = AllocationStats()

    def allocate(self) -> int:
        """Returns an abstract address index in [0, pool_size)."""
        self.stats.requests += 1
        self.stats.round_trips += 1
        if self._free:
            address = self._free.pop()
        elif self._next < self.pool_size:
            address = self._next
            self._next += 1
        else:
            raise AddressError("global multicast address pool exhausted")
        self._allocated.add(address)
        self.stats.active += 1
        return address

    def release(self, address: int) -> None:
        """Return an address to the pool (another round trip)."""
        if address not in self._allocated:
            raise AddressError(f"address {address} is not allocated")
        self._allocated.discard(address)
        self._free.append(address)
        self.stats.round_trips += 1
        self.stats.active -= 1

    def total_latency(self) -> float:
        """Wall-clock spent talking to the authority."""
        return self.stats.round_trips * self.service_rtt


class UncoordinatedAllocator:
    """Random self-assignment from the shared pool (sdr-style).

    Free and instant, but two sessions that draw the same address share
    it — the group model then delivers each session's traffic to the
    other's receivers. ``allocate`` records such collisions.
    """

    def __init__(self, pool_size: int = GROUP_POOL_SIZE, seed: int = 0) -> None:
        if pool_size <= 0:
            raise AddressError("pool_size must be positive")
        self.pool_size = pool_size
        self.rng = random.Random(seed)
        self._in_use: set[int] = set()
        self.stats = AllocationStats()

    def allocate(self) -> int:
        self.stats.requests += 1
        address = self.rng.randrange(self.pool_size)
        if address in self._in_use:
            self.stats.collisions += 1
        else:
            self._in_use.add(address)
        self.stats.active = len(self._in_use)
        return address

    def release(self, address: int) -> None:
        self._in_use.discard(address)
        self.stats.active = len(self._in_use)

    def expected_collisions(self, sessions: int) -> float:
        """Expected number of colliding pairs among ``sessions``."""
        return sessions * (sessions - 1) / (2.0 * self.pool_size)
