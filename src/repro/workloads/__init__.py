"""Workload generators and named scenarios.

:mod:`~repro.workloads.churn` produces subscribe/unsubscribe event
streams (deterministic and Poisson); :mod:`~repro.workloads.scenarios`
packages the paper's named workloads — the Figure 8 proactive-counting
scenario, the Super Bowl feed, the stock ticker, and the 10-way
conference — so examples, tests, and benchmarks share one definition.
"""

from repro.workloads.churn import (
    ChurnEvent,
    count_message_stream,
    poisson_churn,
    schedule_churn,
)
from repro.workloads.scenarios import (
    Fig8Sample,
    build_fig8_network,
    fig8_events,
    run_fig8,
)

__all__ = [
    "ChurnEvent",
    "Fig8Sample",
    "build_fig8_network",
    "count_message_stream",
    "fig8_events",
    "poisson_churn",
    "run_fig8",
    "schedule_churn",
]
