"""Subscribe/unsubscribe workload generation.

Two consumers: whole-network simulations (events scheduled on the
simulator via :func:`schedule_churn`) and the T4 event-processing
throughput benchmark, which drives a single router's ECMP agent with a
pre-generated stream of Count messages (:func:`count_message_stream`) —
the equivalent of the paper's "eight active Ethernet neighbors
continuously sending subscribe and unsubscribe events".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.core.channel import Channel
from repro.core.ecmp.countids import SUBSCRIBER_ID
from repro.core.ecmp.messages import Count
from repro.core.keys import ChannelKey
from repro.core.network import ExpressNetwork
from repro.errors import WorkloadError


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change."""

    time: float
    host: str
    action: str  # "join" | "leave"

    def __post_init__(self) -> None:
        if self.action not in ("join", "leave"):
            raise WorkloadError(f"unknown churn action {self.action!r}")


def poisson_churn(
    hosts: Sequence[str],
    duration: float,
    mean_off_time: float,
    mean_on_time: float,
    seed: int = 0,
) -> list[ChurnEvent]:
    """Each host alternates off/on with exponential holding times.

    Starts everyone unsubscribed; returns events sorted by time.
    """
    if duration <= 0 or mean_off_time <= 0 or mean_on_time <= 0:
        raise WorkloadError("duration and holding times must be positive")
    rng = random.Random(seed)
    events: list[ChurnEvent] = []
    for host in hosts:
        t = rng.expovariate(1.0 / mean_off_time)
        subscribed = False
        while t < duration:
            action = "leave" if subscribed else "join"
            events.append(ChurnEvent(time=t, host=host, action=action))
            subscribed = not subscribed
            hold = mean_on_time if subscribed else mean_off_time
            t += rng.expovariate(1.0 / hold)
    events.sort(key=lambda e: (e.time, e.host))
    return events


def schedule_churn(
    net: ExpressNetwork,
    channel: Channel,
    events: Sequence[ChurnEvent],
    key: Optional[ChannelKey] = None,
) -> None:
    """Schedule churn events onto the network's simulator."""
    for event in events:
        if event.action == "join":
            action = lambda h=event.host: net.host(h).subscribe(channel, key=key)
        else:
            action = lambda h=event.host: net.host(h).unsubscribe(channel)
        net.sim.schedule_at(event.time, action, name=f"churn-{event.action}")


def count_message_stream(
    n_channels: int,
    neighbors: Sequence[str],
    n_events: int,
    source_address: int = 0x0A000001,
    seed: int = 0,
) -> Iterator[tuple[Count, str]]:
    """An endless-ish alternating subscribe/unsubscribe Count stream.

    Yields ``(count_message, from_neighbor)`` pairs: each (channel,
    neighbor) pair toggles between joined (count=1) and left (count=0),
    channels drawn uniformly — the §5.3 measurement workload.
    """
    if n_channels < 1 or not neighbors or n_events < 0:
        raise WorkloadError("need >= 1 channel, >= 1 neighbor, >= 0 events")
    rng = random.Random(seed)
    joined: set[tuple[int, str]] = set()
    for _ in range(n_events):
        suffix = rng.randrange(1, n_channels + 1)
        neighbor = neighbors[rng.randrange(len(neighbors))]
        state_key = (suffix, neighbor)
        channel = Channel.of(source_address, suffix)
        if state_key in joined:
            joined.discard(state_key)
            yield Count(channel=channel, count_id=SUBSCRIBER_ID, count=0), neighbor
        else:
            joined.add(state_key)
            yield Count(channel=channel, count_id=SUBSCRIBER_ID, count=1), neighbor
