"""Named scenarios from the paper.

The centerpiece is the Figure 8 proactive-counting scenario: "a
simulated short event with about 250 subscribers and a 3 minute
duration. The scenario has an initial burst of subscriptions at time 0,
followed by slow subscriptions until time 200, a burst of subscriptions
at time 200, then no activity until time 300, when all hosts
unsubscribe quickly." Both simulated curves use τ = 120 with α = 4 and
α = 2.5.

:func:`run_fig8` replays that scenario on a balanced-tree EXPRESS
network in PROACTIVE propagation mode and samples, at the source, the
estimated subscriber count (the root's aggregated downstream sum) and
the cumulative Count messages delivered — the two panels of Figure 8.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.channel import Channel
from repro.core.ecmp.protocol import CountPropagation
from repro.core.network import ExpressNetwork
from repro.core.proactive import ToleranceCurve
from repro.errors import WorkloadError
from repro.netsim.topology import Topology, TopologyBuilder
from repro.workloads.churn import ChurnEvent

#: Figure 8 shape constants (read off the published plot).
FIG8_SUBSCRIBERS = 250
FIG8_INITIAL_BURST = 140
FIG8_SLOW_JOIN_END = 200.0
FIG8_SECOND_BURST_AT = 200.0
FIG8_QUIET_UNTIL = 300.0
FIG8_END = 310.0
FIG8_TAU = 120.0


def fig8_events(
    n_hosts: int = FIG8_SUBSCRIBERS,
    hosts: Optional[list[str]] = None,
    seed: int = 0,
) -> list[ChurnEvent]:
    """The Figure 8 membership trace over ``n_hosts`` subscriber names."""
    if hosts is None:
        hosts = [f"sub{i}" for i in range(n_hosts)]
    if len(hosts) < n_hosts:
        raise WorkloadError(f"need {n_hosts} hosts, got {len(hosts)}")
    hosts = list(hosts[:n_hosts])
    rng = random.Random(seed)
    rng.shuffle(hosts)

    events: list[ChurnEvent] = []
    burst1 = hosts[:FIG8_INITIAL_BURST]
    n_slow = max((n_hosts - FIG8_INITIAL_BURST) // 10, 1)
    slow = hosts[FIG8_INITIAL_BURST : FIG8_INITIAL_BURST + n_slow]
    burst2 = hosts[FIG8_INITIAL_BURST + n_slow :]

    # Initial burst: everyone in the first second or two.
    for host in burst1:
        events.append(ChurnEvent(time=rng.uniform(0.0, 2.0), host=host, action="join"))
    # Slow trickle until t=200.
    for host in slow:
        events.append(
            ChurnEvent(time=rng.uniform(5.0, FIG8_SLOW_JOIN_END), host=host, action="join")
        )
    # Second burst right after t=200.
    for host in burst2:
        events.append(
            ChurnEvent(
                time=FIG8_SECOND_BURST_AT + rng.uniform(0.0, 2.0),
                host=host,
                action="join",
            )
        )
    # Quiet until t=300, then everyone leaves quickly.
    for host in hosts:
        events.append(
            ChurnEvent(
                time=FIG8_QUIET_UNTIL + rng.uniform(0.0, FIG8_END - FIG8_QUIET_UNTIL),
                host=host,
                action="leave",
            )
        )
    events.sort(key=lambda e: (e.time, e.host))
    return events


def build_fig8_network(
    alpha: float,
    tau: float = FIG8_TAU,
    e_max: float = 1.0,
    depth: int = 2,
    fanout: int = 16,
    seed: int = 0,
) -> tuple[ExpressNetwork, Channel, list[str], str]:
    """A balanced-tree EXPRESS network in PROACTIVE mode.

    Returns ``(net, channel, subscriber_hosts, source_host)``. Leaves
    of the tree act as subscriber hosts; the source host hangs off the
    root. ``fanout**depth`` must cover the 250 subscribers.
    """
    if fanout**depth < FIG8_SUBSCRIBERS:
        raise WorkloadError(
            f"tree with fanout {fanout} depth {depth} has only "
            f"{fanout ** depth} leaves; need {FIG8_SUBSCRIBERS}"
        )
    topo = TopologyBuilder.balanced_tree(depth=depth, fanout=fanout, seed=seed)
    topo.add_node("src")
    topo.add_link("src", "r", delay=0.001)
    leaves = [f"d{depth}_{i}" for i in range(fanout**depth)]
    curve = ToleranceCurve(e_max=e_max, alpha=alpha, tau=tau)
    net = ExpressNetwork(
        topo,
        hosts=leaves + ["src"],
        propagation=CountPropagation.PROACTIVE,
        proactive_curve=curve,
    )
    source = net.source("src")
    channel = source.allocate_channel()
    return net, channel, leaves, "src"


@dataclass
class Fig8Sample:
    """One sample of the two Figure 8 panels."""

    time: float
    actual: int
    estimated: int
    counts_delivered_to_source: int


def run_fig8(
    alpha: float,
    tau: float = FIG8_TAU,
    e_max: float = 1.0,
    sample_interval: float = 2.0,
    seed: int = 0,
    depth: int = 2,
    fanout: int = 16,
) -> list[Fig8Sample]:
    """Replay the Figure 8 scenario; returns the sampled time series.

    ``estimated`` is the aggregated downstream sum at the source node
    ("the estimated group size (c_sum), as measured at the root of the
    tree"); ``counts_delivered_to_source`` is the cumulative number of
    Count messages the source's node has received (the lower panel's
    bandwidth curve).
    """
    net, channel, leaves, src = build_fig8_network(
        alpha, tau=tau, e_max=e_max, depth=depth, fanout=fanout, seed=seed
    )
    events = fig8_events(hosts=leaves, seed=seed)

    actual = {"n": 0}

    def apply(event: ChurnEvent) -> None:
        if event.action == "join":
            net.host(event.host).subscribe(channel)
            actual["n"] += 1
        else:
            if net.host(event.host).unsubscribe(channel):
                actual["n"] -= 1

    for event in events:
        net.sim.schedule_at(event.time, lambda e=event: apply(e))

    samples: list[Fig8Sample] = []
    source_agent = net.ecmp_agents[src]

    def sample() -> None:
        samples.append(
            Fig8Sample(
                time=net.sim.now,
                actual=actual["n"],
                estimated=source_agent.subscriber_count_estimate(channel),
                counts_delivered_to_source=source_agent.stats.get("counts_rx"),
            )
        )

    t = 0.0
    while t <= FIG8_END + tau:
        net.sim.schedule_at(t, sample)
        t += sample_interval

    net.run(until=FIG8_END + tau + 1.0)
    return samples
