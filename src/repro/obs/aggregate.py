"""Fleet aggregation: many worker telemetry dumps, one view.

The parallel runner feeds this with the periodic telemetry snapshots
workers ship over the coordinator pipe (see
:meth:`repro.netsim.parallel.worker.PartitionWorker.telemetry_snapshot`).
Each snapshot is cumulative, so ingestion is latest-wins per shard;
materialization then merges the latest dump of every shard into one
:class:`~repro.obs.registry.MetricsRegistry` with a ``shard`` label
appended to every family (the fleet scrape a Prometheus server would
see) and one :class:`~repro.obs.tracing.Tracer` holding every shard's
spans, stitched across process boundaries by the shard-namespaced span
ids and the parent contexts that rode the proxied packets.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer


class FleetAggregator:
    """Latest-wins per-shard telemetry store with merged views."""

    def __init__(self) -> None:
        self._registry_dumps: dict[int, list] = {}
        #: shard -> span_id -> record; later ingests of the same span
        #: (e.g. it ended since the last snapshot) replace the record.
        self._spans: dict[int, dict[int, dict]] = {}
        self._quiesced: dict[int, float] = {}
        self.snapshots_ingested = 0

    # -- ingestion -------------------------------------------------------

    def ingest(self, shard: int, telemetry: Optional[dict]) -> None:
        """Fold one worker telemetry snapshot in (None is a no-op, so
        the runner can pass round replies through unconditionally)."""
        if not telemetry:
            return
        registry_dump = telemetry.get("registry")
        if registry_dump is not None:
            self._registry_dumps[shard] = registry_dump
        for record in telemetry.get("spans", ()):
            self._spans.setdefault(shard, {})[record["span_id"]] = record
        quiesced = telemetry.get("quiesced_at")
        if quiesced is not None:
            self._quiesced[shard] = quiesced
        self.snapshots_ingested += 1

    # -- merged views ----------------------------------------------------

    def shards(self) -> list[int]:
        return sorted(self._registry_dumps.keys() | self._spans.keys())

    def registry(self) -> MetricsRegistry:
        """One registry holding every shard's latest families, each
        child labelled with its ``shard``. Rebuilt from the stored
        dumps on every call (dumps are cumulative; merging a newer dump
        into an existing merge would double-count)."""
        merged = MetricsRegistry()
        for shard in sorted(self._registry_dumps):
            merged.merge_dump(
                self._registry_dumps[shard], extra_labels={"shard": shard}
            )
        return merged

    def tracer(self) -> Tracer:
        """One tracer holding every shard's spans (stitched: parent
        links minted on other shards resolve because ids are globally
        unique — see :func:`repro.obs.tracing.shard_id_base`)."""
        stitched = Tracer()
        for shard in sorted(self._spans):
            records = sorted(
                self._spans[shard].values(), key=lambda r: (r["start"], r["span_id"])
            )
            stitched.absorb(records, shard=shard)
        return stitched

    def quiesced_at(self) -> float:
        """Fleet quiescence: the last state change on any shard."""
        return max(self._quiesced.values(), default=0.0)

    def prometheus(self) -> str:
        """The merged fleet scrape in Prometheus text format."""
        from repro.obs.exporters import prometheus_text

        return prometheus_text(self.registry())
