"""Causal tracing for ECMP control traffic.

Every control message in an instrumented network carries a
:class:`SpanContext` (trace id + span id), so a subscription's
hop-by-hop RPF propagation toward the source, and a CountQuery's
fan-out and aggregation back up the tree, can be reconstructed after
the fact as a span tree — the debugging discipline HPIM-DM applies to
its per-message sequence numbers, applied to EXPRESS.

The model is deliberately OpenTelemetry-shaped but simulator-native:

* a :class:`Span` is one unit of causally-connected work on one node
  (handling a message, originating a query, relaying a verdict);
* the span active while a message is sent becomes the parent of the
  span that handles that message on the receiving node;
* ids are drawn from a deterministic counter so traces are bit-for-bit
  reproducible across runs, like everything else in the simulator.

The :class:`Tracer` keeps every finished and in-flight span and answers
the queries the benchmarks and the CLI need: ``spans_for(channel)``,
``tree(trace_id)``, ``leaves``, and ``critical_path`` (which subtree's
reply gated a query's completion, and how long the longest causal chain
took in simulated time).
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional, Union


@dataclass(frozen=True)
class SpanContext:
    """The wire-portable part of a span: what a message carries."""

    trace_id: int
    span_id: int


@dataclass
class Span:
    """One unit of causally-linked work on one node."""

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    name: str
    node: Optional[str]
    start: float
    end: Optional[float] = None
    attrs: dict = field(default_factory=dict)
    #: Timestamped annotations (e.g. each downstream reply folded into
    #: a pending query) that are causal events but not spans.
    events: list[tuple[float, str, dict]] = field(default_factory=list)

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_record(self) -> dict:
        """A picklable/JSON-able flat record (the JSONL span shape;
        also what workers ship over the pipe for trace stitching)."""
        return {
            "kind": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "attrs": {k: str(v) for k, v in self.attrs.items()},
            "events": [
                {"time": t, "name": n, "attrs": {k: str(v) for k, v in a.items()}}
                for t, n, a in self.events
            ],
        }

    @classmethod
    def from_record(cls, record: dict) -> "Span":
        return cls(
            trace_id=record["trace_id"],
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            name=record["name"],
            node=record.get("node"),
            start=record["start"],
            end=record.get("end"),
            attrs=dict(record.get("attrs", {})),
            events=[
                (e["time"], e["name"], dict(e.get("attrs", {})))
                for e in record.get("events", ())
            ],
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        where = f"@{self.node}" if self.node else ""
        return f"<Span {self.span_id} {self.name}{where} trace={self.trace_id}>"


ParentLike = Union[SpanContext, Span, None]


#: Bit position of the shard namespace in span/trace ids: shard ``k``
#: draws ids from ``(k + 1) << SHARD_ID_SHIFT``, so ids minted by
#: different partition workers (and by an unsharded run, base 0) can
#: never collide — the property cross-shard trace stitching relies on.
SHARD_ID_SHIFT = 48


def shard_id_base(shard: int) -> int:
    """The id-counter base for one shard's tracer (see SHARD_ID_SHIFT)."""
    return (int(shard) + 1) << SHARD_ID_SHIFT


def id_shard(span_or_trace_id: int) -> Optional[int]:
    """Which shard minted an id (None for an unsharded tracer's ids)."""
    high = span_or_trace_id >> SHARD_ID_SHIFT
    return high - 1 if high else None


class Tracer:
    """Records spans against a pluggable clock (bound to ``sim.now``
    when attached to a topology; see :mod:`repro.obs.hooks`).

    ``id_base`` namespaces the deterministic id counter: a partition
    worker passes :func:`shard_id_base` so span/trace ids are globally
    unique across a sharded fleet, which lets span records from many
    workers be merged (:meth:`absorb`) into one tracer whose parent
    links — carried across the cut on the wire — stitch back into
    cross-shard span trees.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        id_base: int = 0,
    ) -> None:
        self.clock: Callable[[], float] = clock if clock is not None else lambda: 0.0
        self.spans: list[Span] = []
        self._by_id: dict[int, Span] = {}
        self._by_trace: dict[int, list[Span]] = {}
        self._by_channel: dict[str, list[Span]] = {}
        self._stack: list[Span] = []
        self.id_base = id_base
        self._ids = itertools.count(id_base + 1)

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost active span, if any."""
        return self._stack[-1] if self._stack else None

    def current_context(self) -> Optional[SpanContext]:
        span = self.current
        return span.context if span is not None else None

    def start_span(
        self,
        name: str,
        node: Optional[str] = None,
        parent: ParentLike = None,
        channel: object = None,
        **attrs: object,
    ) -> Span:
        """Open a span. ``parent`` may be a span, a wire context, or
        None (falls back to the currently active span; a true root when
        there is none)."""
        if parent is None:
            parent = self.current
        span_id = next(self._ids)
        if parent is None:
            trace_id, parent_id = next(self._ids), None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        span = Span(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            node=node,
            start=self.clock(),
            attrs=dict(attrs),
        )
        if channel is not None:
            span.attrs["channel"] = str(channel)
            self._by_channel.setdefault(str(channel), []).append(span)
        self.spans.append(span)
        self._by_id[span_id] = span
        self._by_trace.setdefault(trace_id, []).append(span)
        return span

    def end(self, span: Span) -> None:
        """Close a span (idempotent)."""
        if span.end is None:
            span.end = self.clock()

    def add_event(self, span: Span, name: str, **attrs: object) -> None:
        span.events.append((self.clock(), name, dict(attrs)))

    @contextmanager
    def activate(self, span: Span) -> Iterator[Span]:
        """Make ``span`` current for the duration of the block without
        ending it (used to re-enter a stored span, e.g. when a pending
        query finalizes long after its handler returned)."""
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()

    @contextmanager
    def span(
        self,
        name: str,
        node: Optional[str] = None,
        parent: ParentLike = None,
        channel: object = None,
        **attrs: object,
    ) -> Iterator[Span]:
        """start_span + activate + end in one block."""
        opened = self.start_span(name, node=node, parent=parent, channel=channel, **attrs)
        with self.activate(opened):
            try:
                yield opened
            finally:
                self.end(opened)

    # ------------------------------------------------------------------
    # merging (cross-shard trace stitching)
    # ------------------------------------------------------------------

    def absorb(self, records: Iterable[dict], shard: object = None) -> int:
        """Register externally-produced span records (``Span.to_record``
        shape) into this tracer's indexes. Used by the parallel runner
        to merge per-worker span dumps: workers mint ids from disjoint
        shard namespaces, and parent contexts carried across the cut
        point at sender-shard span ids, so the absorbed set reconnects
        into span trees that cross process boundaries.

        ``shard`` (when given) is stamped into each span's attrs.
        Returns the number of spans absorbed; spans whose id is already
        present are skipped (re-absorbing a newer dump is idempotent
        for ended spans and refreshes nothing else).
        """
        added = 0
        for record in records:
            span_id = record["span_id"]
            if span_id in self._by_id:
                continue
            span = Span.from_record(record)
            if shard is not None:
                span.attrs.setdefault("shard", str(shard))
            self.spans.append(span)
            self._by_id[span_id] = span
            self._by_trace.setdefault(span.trace_id, []).append(span)
            channel = span.attrs.get("channel")
            if channel is not None:
                self._by_channel.setdefault(channel, []).append(span)
            added += 1
        if added:
            key = lambda s: (s.start, s.span_id)
            self.spans.sort(key=key)
            for members in self._by_trace.values():
                members.sort(key=key)
            for members in self._by_channel.values():
                members.sort(key=key)
        return added

    def cross_shard_traces(self) -> list[int]:
        """Trace ids whose spans were minted by more than one shard
        (by id namespace — see :func:`id_shard`), in first-seen order."""
        out = []
        for trace_id, members in self._by_trace.items():
            shards = {id_shard(span.span_id) for span in members}
            if len(shards) > 1:
                out.append(trace_id)
        return out

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def get(self, span_id: int) -> Optional[Span]:
        return self._by_id.get(span_id)

    def spans_for(self, channel: object) -> list[Span]:
        """Every span tagged with ``channel``, in start order."""
        return list(self._by_channel.get(str(channel), []))

    def trace(self, trace_id: int) -> list[Span]:
        """Every span of one trace, in start order."""
        return list(self._by_trace.get(trace_id, []))

    def traces_for(self, channel: object) -> list[int]:
        """Distinct trace ids touching ``channel``, in first-seen order."""
        seen: dict[int, None] = {}
        for span in self._by_channel.get(str(channel), []):
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def children(self, span: Span) -> list[Span]:
        return [
            other
            for other in self._by_trace.get(span.trace_id, [])
            if other.parent_id == span.span_id
        ]

    def roots(self, trace_id: int) -> list[Span]:
        members = self._by_trace.get(trace_id, [])
        ids = {span.span_id for span in members}
        return [s for s in members if s.parent_id is None or s.parent_id not in ids]

    def leaves(self, trace_id: int) -> list[Span]:
        """Spans of the trace with no children (e.g. the subscribers
        that answered a CountQuery)."""
        members = self._by_trace.get(trace_id, [])
        parents = {span.parent_id for span in members if span.parent_id is not None}
        return [span for span in members if span.span_id not in parents]

    def tree(self, trace_id: int) -> list["SpanNode"]:
        """The trace as nested :class:`SpanNode` roots."""
        members = self._by_trace.get(trace_id, [])
        nodes = {span.span_id: SpanNode(span) for span in members}
        roots = []
        for span in members:
            node = nodes[span.span_id]
            parent = nodes.get(span.parent_id) if span.parent_id is not None else None
            if parent is None:
                roots.append(node)
            else:
                parent.children.append(node)
        return roots

    def critical_path(self, trace_id: int) -> tuple[float, list[Span]]:
        """(latency, chain) of the longest root-to-leaf causal chain,
        measured on span *end* times — for a CountQuery this is the
        subtree whose reply gated completion."""
        members = self._by_trace.get(trace_id, [])
        if not members:
            return 0.0, []
        roots = self.roots(trace_id)
        root = min(roots, key=lambda s: s.start) if roots else members[0]

        def finish(span: Span) -> float:
            return span.end if span.end is not None else span.start

        # Deferred spans (pending queries) outlive their children, so
        # walk *down* from the root, taking the latest-finishing child
        # at each level — that subtree gated the parent's completion.
        kids: dict[int, list[Span]] = {}
        for span in members:
            if span.parent_id is not None:
                kids.setdefault(span.parent_id, []).append(span)
        chain = [root]
        while True:
            below = kids.get(chain[-1].span_id)
            if not below:
                break
            chain.append(max(below, key=finish))
        return max(0.0, finish(root) - root.start), chain

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def render(self, trace_id: int) -> str:
        """An indented text rendering of one trace's span tree."""
        lines: list[str] = []

        def walk(node: "SpanNode", depth: int) -> None:
            span = node.span
            dur = f" {span.duration * 1000:.3f}ms" if span.duration is not None else ""
            where = f" @{span.node}" if span.node else ""
            extra = ""
            if span.events:
                extra = f"  [{len(span.events)} events]"
            lines.append(f"{'  ' * depth}{span.name}{where} t={span.start:.6f}{dur}{extra}")
            for child in sorted(node.children, key=lambda n: n.span.start):
                walk(child, depth + 1)

        for root in self.tree(trace_id):
            walk(root, 0)
        return "\n".join(lines)


class SpanNode:
    """One node of a reconstructed span tree."""

    __slots__ = ("span", "children")

    def __init__(self, span: Span) -> None:
        self.span = span
        self.children: list["SpanNode"] = []

    def leaf_count(self) -> int:
        if not self.children:
            return 1
        return sum(child.leaf_count() for child in self.children)

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def __iter__(self) -> Iterator[Span]:
        yield self.span
        for child in self.children:
            yield from child
