"""Exporters: Prometheus text format and JSON-lines event dumps.

``prometheus_text`` renders a :class:`~repro.obs.registry.MetricsRegistry`
snapshot in the Prometheus exposition format (``# HELP`` / ``# TYPE``
headers, ``_bucket``/``_sum``/``_count`` series for histograms), so a
simulated run's metrics can be diffed, scraped, or pasted into any
PromQL-speaking tool.

``spans_to_jsonl`` / ``metrics_to_jsonl`` dump the tracer and registry
as one JSON object per line — the grep-friendly event-dump format the
benchmarks post-process.
"""

from __future__ import annotations

import json
import math
from typing import IO, Iterable, Optional

from repro.obs.registry import HistogramValue, MetricFamily, MetricsRegistry
from repro.obs.tracing import Span, Tracer


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(names: Iterable[str], values: Iterable[str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _render_family(family: MetricFamily, lines: list[str]) -> None:
    lines.append(f"# HELP {family.name} {family.help}")
    lines.append(f"# TYPE {family.name} {family.kind}")
    for values, child in family.children():
        labels = _format_labels(family.labelnames, values)
        if isinstance(child, HistogramValue):
            for bound, cumulative in child.cumulative_buckets():
                le = "+Inf" if bound == math.inf else _format_value(bound)
                bucket_labels = _format_labels(
                    family.labelnames, values, extra=f'le="{le}"'
                )
                lines.append(f"{family.name}_bucket{bucket_labels} {cumulative}")
            lines.append(f"{family.name}_sum{labels} {_format_value(child.sum)}")
            lines.append(f"{family.name}_count{labels} {child.count}")
        else:
            lines.append(f"{family.name}{labels} {_format_value(child.value)}")


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.collect():
        _render_family(family, lines)
    lines.append("")
    return "\n".join(lines)


def write_prometheus(registry: MetricsRegistry, out: IO[str]) -> None:
    out.write(prometheus_text(registry))


# ----------------------------------------------------------------------
# JSON lines
# ----------------------------------------------------------------------


def _span_record(span: Span) -> dict:
    return span.to_record()


def spans_to_jsonl(tracer: Tracer, out: Optional[IO[str]] = None) -> str:
    """One JSON object per span, in start order."""
    lines = [json.dumps(_span_record(span), sort_keys=True) for span in tracer.spans]
    text = "\n".join(lines) + ("\n" if lines else "")
    if out is not None:
        out.write(text)
    return text


def metrics_to_jsonl(registry: MetricsRegistry, out: Optional[IO[str]] = None) -> str:
    """One JSON object per time series (histograms summarized)."""
    lines = []
    for family in registry.collect():
        for values, child in family.children():
            record: dict = {
                "kind": "metric",
                "name": family.name,
                "type": family.kind,
                "labels": dict(zip(family.labelnames, values)),
            }
            if isinstance(child, HistogramValue):
                record.update(
                    count=child.count,
                    sum=child.sum,
                    p50=child.percentile(50),
                    p90=child.percentile(90),
                    p99=child.percentile(99),
                )
            else:
                record["value"] = child.value
            lines.append(json.dumps(record, sort_keys=True))
    text = "\n".join(lines) + ("\n" if lines else "")
    if out is not None:
        out.write(text)
    return text


def events_to_jsonl(
    registry: MetricsRegistry, tracer: Tracer, out: Optional[IO[str]] = None
) -> str:
    """Full observability dump: every metric series, then every span."""
    text = metrics_to_jsonl(registry) + spans_to_jsonl(tracer)
    if out is not None:
        out.write(text)
    return text
