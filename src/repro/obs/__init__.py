"""Unified observability: metrics registry, causal tracing, exporters.

Quick start::

    from repro import ExpressNetwork, TopologyBuilder
    from repro.obs import Observability
    from repro.obs.exporters import prometheus_text

    obs = Observability()
    net = ExpressNetwork(TopologyBuilder.isp(), obs=obs)
    net.run(until=0.1)
    ...  # subscribe, send, count_query
    print(prometheus_text(obs.registry))          # metrics snapshot
    for tid in obs.tracer.traces_for(channel):    # causal span trees
        print(obs.tracer.render(tid))

``python -m repro.obs`` runs a canned ISP scenario and prints the full
report; ``python -m repro.obs diff A.json B.json`` diffs two metric
dumps. See docs/observability.md for the metric and span inventory and
the distributed-telemetry pipeline (cross-shard aggregation, trace
stitching, flight recorder).
"""

from repro.obs.aggregate import FleetAggregator
from repro.obs.convergence import ConvergenceMonitor, settle_seconds
from repro.obs.flightrecorder import FlightRecorder
from repro.obs.hooks import (
    SPAN_HEADER,
    LinkMetrics,
    NodeMetrics,
    Observability,
    attach_topology,
    instrument_simulator,
)
from repro.obs.registry import (
    LATENCY_BUCKETS,
    WALL_BUCKETS,
    CounterBag,
    MetricError,
    MetricFamily,
    MetricsRegistry,
    percentile,
)
from repro.obs.tracing import (
    Span,
    SpanContext,
    SpanNode,
    Tracer,
    id_shard,
    shard_id_base,
)

__all__ = [
    "SPAN_HEADER",
    "LATENCY_BUCKETS",
    "WALL_BUCKETS",
    "ConvergenceMonitor",
    "CounterBag",
    "FleetAggregator",
    "FlightRecorder",
    "LinkMetrics",
    "MetricError",
    "MetricFamily",
    "MetricsRegistry",
    "NodeMetrics",
    "Observability",
    "Span",
    "SpanContext",
    "SpanNode",
    "Tracer",
    "attach_topology",
    "id_shard",
    "instrument_simulator",
    "percentile",
    "settle_seconds",
    "shard_id_base",
]
