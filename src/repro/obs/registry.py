"""Labelled metrics registry: counters, gauges, and histograms.

The registry replaces the ad-hoc per-agent ``Counter`` bags that each
benchmark used to re-derive by hand. A metric *family* is declared once
(name, help text, label names); every distinct label-value combination
materializes a *child* holding the actual value, exactly the Prometheus
data model. Families are idempotent — declaring the same name twice
returns the existing family (and raises if the type or label names
disagree), so independent subsystems can share one family (e.g. EXPRESS
and the PIM/DVMRP baselines both observe ``delivery_latency_seconds``
and comparisons read from the same registry).

Histograms keep both cumulative buckets (for the Prometheus text
exposition) and the raw samples (the simulator's scale makes exact
p50/p90/p99 affordable, and the benchmarks want exact percentiles).
"""

from __future__ import annotations

from bisect import bisect_left
from math import ceil, inf
from typing import Callable, Iterable, Optional, Sequence

from repro.errors import SimulationError


class MetricError(SimulationError):
    """Raised on metric redeclaration conflicts or bad label usage."""


#: Default buckets for simulated-seconds latencies (delivery, RTTs).
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default buckets for wall-clock event-dispatch timings (profiling).
WALL_BUCKETS = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4, 1e-3, 5e-3, 2.5e-2, 1e-1,
)


def percentile(samples: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of ``samples`` (``p`` in [0, 100])."""
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


class _Child:
    """Base for one labelled time series within a family."""

    __slots__ = ("labels",)

    def __init__(self, labels: tuple[str, ...]) -> None:
        self.labels = labels


class CounterValue(_Child):
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self, labels: tuple[str, ...]) -> None:
        super().__init__(labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricError("counters can only increase")
        self.value += amount


class GaugeValue(_Child):
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self, labels: tuple[str, ...]) -> None:
        super().__init__(labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class HistogramValue(_Child):
    """Cumulative-bucket histogram plus raw samples for percentiles."""

    __slots__ = ("buckets", "bucket_counts", "sum", "count", "samples")

    def __init__(self, labels: tuple[str, ...], buckets: Sequence[float]) -> None:
        super().__init__(labels)
        self.buckets = tuple(buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # trailing +Inf
        self.sum = 0.0
        self.count = 0
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1
        self.samples.append(value)

    def percentile(self, p: float) -> float:
        """Exact nearest-rank percentile from the raw samples."""
        return percentile(self.samples, p)

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, bucket_counts: Sequence[int], total: float, count: int,
              samples: Sequence[float]) -> None:
        """Fold another histogram's state into this one (same buckets).

        Bucket counts, sum, and count add exactly, so the merged
        cumulative buckets equal what one histogram observing both
        sample streams would hold. Raw samples concatenate; percentiles
        over the union are exact when neither side truncated its
        samples (see :meth:`MetricsRegistry.dump`'s ``max_samples``).
        """
        if len(bucket_counts) != len(self.bucket_counts):
            raise MetricError(
                f"histogram merge: {len(bucket_counts)} buckets "
                f"!= {len(self.bucket_counts)}"
            )
        for index, n in enumerate(bucket_counts):
            self.bucket_counts[index] += n
        self.sum += total
        self.count += count
        self.samples.extend(samples)

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        out = []
        running = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((inf, self.count))
        return out


class MetricFamily:
    """One named metric with a fixed label schema and many children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets) if buckets is not None else None
        self._children: dict[tuple[str, ...], _Child] = {}

    def _make_child(self, values: tuple[str, ...]) -> _Child:
        if self.kind == "counter":
            return CounterValue(values)
        if self.kind == "gauge":
            return GaugeValue(values)
        return HistogramValue(values, self.buckets or LATENCY_BUCKETS)

    def labels(self, **labels: object):
        """The child for one label-value combination (created lazily)."""
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return self.child(tuple(str(labels[name]) for name in self.labelnames))

    def child(self, values: tuple[str, ...]) -> _Child:
        """The child for one label-*value* tuple (positional; created
        lazily). The registry merge path uses this to address children
        by the label values a dump carries."""
        child = self._children.get(values)
        if child is None:
            if len(values) != len(self.labelnames):
                raise MetricError(
                    f"{self.name}: {len(values)} label values for "
                    f"{len(self.labelnames)} label names"
                )
            child = self._make_child(values)
            self._children[values] = child
        return child

    def children(self) -> list[tuple[tuple[str, ...], _Child]]:
        """(label_values, child) pairs in insertion order. Returns a
        snapshot list, not a live view, so exporters stay safe against
        children materializing mid-render (concurrent mutation)."""
        return list(self._children.items())

    # -- unlabelled convenience: proxy straight to the single child ------

    def _solo(self):
        if self.labelnames:
            raise MetricError(f"{self.name} has labels {self.labelnames}; use .labels()")
        return self.labels()

    def inc(self, amount: float = 1) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self) -> float:
        return self._solo().value


class CounterBag:
    """Drop-in replacement for :class:`repro.netsim.trace.Counter` that
    writes into a registry family instead of a private dict.

    The bag pins every label except ``event``; ``incr(key)`` becomes an
    increment of ``family{..., event=key}``. Existing call sites
    (``agent.stats.incr(...)`` / ``.as_dict()``) keep working while the
    counts land in the shared registry.
    """

    def __init__(self, family: MetricFamily, **fixed: object) -> None:
        if set(fixed) | {"event"} != set(family.labelnames):
            raise MetricError(
                f"{family.name}: CounterBag needs labels "
                f"{tuple(n for n in family.labelnames if n != 'event')}, "
                f"got {tuple(sorted(fixed))}"
            )
        self._family = family
        self._fixed = {name: str(value) for name, value in fixed.items()}
        #: key -> child memo: ``incr`` sits on delivery/flush fast
        #: paths, so the per-call ``labels(...)`` dict build and schema
        #: check are paid once per key instead of once per increment.
        self._children: dict[str, CounterValue] = {}

    def incr(self, key: str, amount: int = 1) -> None:
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._family.labels(
                event=key, **self._fixed
            )
        child.inc(amount)

    def get(self, key: str) -> int:
        mapping = dict(self._fixed, event=key)
        values = tuple(mapping[name] for name in self._family.labelnames)
        child = self._family._children.get(values)
        return int(child.value) if child is not None else 0

    def as_dict(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for values, child in self._family.children():
            mapping = dict(zip(self._family.labelnames, values))
            if all(mapping[k] == v for k, v in self._fixed.items()):
                out[mapping["event"]] = int(child.value)
        return out

    def keys(self) -> Iterable[str]:
        return self.as_dict().keys()

    def __getitem__(self, key: str) -> int:
        return self.get(key)


class MetricsRegistry:
    """Holds every metric family; the unit exporters serialize."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._collectors: list[Callable[[], None]] = []

    # -- declaration -----------------------------------------------------

    def _declare(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.labelnames != tuple(labelnames):
                raise MetricError(
                    f"metric {name!r} redeclared as {kind}{tuple(labelnames)}; "
                    f"existing is {existing.kind}{existing.labelnames}"
                )
            return existing
        family = MetricFamily(name, kind, help, labelnames, buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._declare(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._declare(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        return self._declare(name, "histogram", help, labelnames, buckets)

    def counter_bag(self, name: str, help: str = "", **fixed: object) -> CounterBag:
        """A :class:`CounterBag` over ``name{<fixed labels>, event=...}``."""
        labelnames = tuple(sorted(fixed)) + ("event",)
        family = self.counter(name, help, labelnames)
        return CounterBag(family, **fixed)

    # -- collection ------------------------------------------------------

    def register_collector(self, collector: Callable[[], None]) -> None:
        """Register a callback run before every snapshot/export (used to
        refresh gauges whose truth lives elsewhere, e.g. FIB sizes)."""
        self._collectors.append(collector)

    def collect(self) -> list[MetricFamily]:
        """Run collectors, then return families in declaration order."""
        for collector in self._collectors:
            collector()
        return list(self._families.values())

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def counter_snapshot(
        self, exclude: Sequence[str] = ()
    ) -> dict[tuple[str, tuple[str, ...]], object]:
        """A flat ``{(family, label_values): value}`` view of counters
        and histograms, for cross-run equivalence comparisons.

        Counter children map to their integer value; histogram children
        map to ``(count, sum)`` (percentiles are order-dependent and
        excluded). Gauges are skipped — they describe instantaneous
        state, not accumulated work, and are refreshed by collectors
        that may not run identically across processes. Families whose
        name starts with any prefix in ``exclude`` are skipped (used to
        drop wall-clock timings and the parallel sync counters, which
        legitimately differ between sharded and single-process runs).

        Snapshots from several registries (one per partition worker)
        can be merged by summing values key-by-key; the merged result
        of a deterministic sharded run equals the single-process one.
        """
        out: dict[tuple[str, tuple[str, ...]], object] = {}
        for family in self.collect():
            if family.kind == "gauge":
                continue
            if any(family.name.startswith(prefix) for prefix in exclude):
                continue
            for values, child in family.children():
                key = (family.name, values)
                if isinstance(child, HistogramValue):
                    out[key] = (child.count, child.sum)
                else:
                    out[key] = child.value
        return out

    def dump(self, max_samples: Optional[int] = None) -> list[dict]:
        """A picklable, transport-friendly record of every family.

        This is the unit the parallel workers ship over the coordinator
        pipe: plain dicts/lists/numbers only, self-describing enough for
        :meth:`merge_dump` to rebuild the families on the other side.
        Histogram children carry their bucket counts, sum, count, and
        raw samples; ``max_samples`` caps the samples shipped per child
        (evenly strided) to bound snapshot size — the child is then
        marked ``truncated`` and merged percentiles become approximate
        while count/sum/bucket invariants stay exact.
        """
        out: list[dict] = []
        for family in self.collect():
            children: list[tuple[tuple[str, ...], object]] = []
            for values, child in family.children():
                if isinstance(child, HistogramValue):
                    samples = child.samples
                    truncated = (
                        max_samples is not None and len(samples) > max_samples
                    )
                    if truncated:
                        stride = len(samples) / max_samples
                        samples = [
                            samples[int(i * stride)] for i in range(max_samples)
                        ]
                    children.append((values, {
                        "bucket_counts": list(child.bucket_counts),
                        "sum": child.sum,
                        "count": child.count,
                        "samples": list(samples),
                        "truncated": truncated,
                    }))
                else:
                    children.append((values, child.value))
            out.append({
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "labelnames": family.labelnames,
                "buckets": family.buckets,
                "children": children,
            })
        return out

    def merge_dump(
        self,
        dump: Sequence[dict],
        extra_labels: Optional[dict[str, object]] = None,
    ) -> None:
        """Fold a :meth:`dump` into this registry, additively.

        ``extra_labels`` (e.g. ``{"shard": rank}``) are appended to each
        family's label schema and every child's label values, which is
        how the fleet aggregator keeps per-worker series distinct under
        one merged registry. Merging is additive throughout: counters
        and gauges add, histograms fold via :meth:`HistogramValue.merge`
        — so colliding label sets (two dumps carrying the same series)
        sum rather than clobber, matching what a Prometheus
        ``sum by (...)`` over the fleet would report. Conflicting
        redeclarations (same name, different kind or label schema)
        raise :class:`MetricError`.
        """
        extra = dict(extra_labels or {})
        extra_values = tuple(str(v) for v in extra.values())
        for record in dump:
            labelnames = tuple(record["labelnames"]) + tuple(extra)
            family = self._declare(
                record["name"], record["kind"], record["help"],
                labelnames, record["buckets"],
            )
            for values, payload in record["children"]:
                child = family.child(tuple(values) + extra_values)
                if family.kind == "histogram":
                    child.merge(
                        payload["bucket_counts"], payload["sum"],
                        payload["count"], payload["samples"],
                    )
                else:
                    child.value += payload

    def snapshot(self) -> dict[str, dict]:
        """A plain-dict view of every family (tests, JSON export)."""
        out: dict[str, dict] = {}
        for family in self.collect():
            series = {}
            for values, child in family.children():
                key = ",".join(
                    f"{n}={v}" for n, v in zip(family.labelnames, values)
                )
                if isinstance(child, HistogramValue):
                    series[key] = {
                        "count": child.count,
                        "sum": child.sum,
                        "p50": child.percentile(50),
                        "p90": child.percentile(90),
                        "p99": child.percentile(99),
                    }
                else:
                    series[key] = child.value
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "series": series,
            }
        return out
