"""Time-to-quiescence tracking for instrumented runs.

HPIM-DM's headline comparison against soft-state protocols is
*convergence time*: how long after the last membership or topology
event the protocol keeps mutating state. The EXPRESS simulator can
measure this exactly — a :class:`ConvergenceMonitor` timestamps every
durable protocol state mutation (membership joins/leaves, count
updates, upstream re-homes) in simulated time, and the difference
between the last mutation and the last scheduled workload op is the
run's *settle time*.

Event names are deliberately not the signal: periodic keepalives and
UDP-mode refresh queries dispatch forever, so an event-level quiescence
test would never trigger. State mutations are the right discriminator —
a settled tree absorbs keepalives without changing anything.

Simulated time makes the figure machine- and scale-independent: the
scenario generators pin op windows regardless of subscriber count, so
``settle_seconds`` from a laptop quick run and a CI full run are
directly comparable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.engine import Simulator


class ConvergenceMonitor:
    """Timestamps durable protocol state mutations in simulated time.

    Attach via ``Observability.convergence``; the instrumented ECMP
    agent calls ``obs.state_changed()`` at each mutation point and this
    monitor records ``sim.now``. Cheap enough to leave on for whole
    runs: one attribute write per state change, nothing per event.
    """

    __slots__ = ("sim", "last_change", "changes")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: Simulated time of the most recent state mutation (0.0 if
        #: none happened — an empty run is trivially converged).
        self.last_change: float = 0.0
        self.changes: int = 0

    def touch(self, count: int = 1) -> None:
        self.last_change = self.sim.now
        self.changes += count

    def settle_seconds(self, after: float = 0.0) -> float:
        """How long past ``after`` (typically the last workload op's
        simulated time) state kept changing. 0.0 when the system was
        already quiescent by then."""
        return max(0.0, self.last_change - after)

    def as_dict(self) -> dict:
        return {"last_change": self.last_change, "changes": self.changes}


def last_op_time(ops: Iterable[tuple]) -> float:
    """The simulated time of the last scheduled workload op (0.0 for an
    empty schedule); ops are ``(when, kind, ...)`` tuples as used by
    :class:`repro.netsim.parallel.scenario.ScenarioSpec`."""
    return max((op[0] for op in ops), default=0.0)


def settle_seconds(quiesced_at: float, ops: Iterable[tuple]) -> float:
    """Fleet settle time: last state change minus last scheduled op."""
    return max(0.0, quiesced_at - last_op_time(ops))
