"""Wiring: attach the registry and tracer to a running system.

Three layers get instrumented without touching their call sites:

* the :class:`~repro.netsim.engine.Simulator` — a dispatch listener
  counts and wall-clock-times every event by name and keeps a
  queue-depth gauge, so protocol timers and hot loops are profiled for
  free;
* every :class:`~repro.netsim.node.Node` — per-node tx/rx/drop packet
  and byte counters;
* every :class:`~repro.netsim.link.Link` — transmit/loss counters.

:class:`Observability` bundles one registry and one tracer; pass it to
``ExpressNetwork(..., obs=obs)`` or ``GroupNetwork(..., obs=obs)`` (or
call :func:`attach_topology` directly) and every layer reports into the
same place, which is what makes EXPRESS-vs-PIM/DVMRP comparisons read
off a single snapshot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.accounting import link_accounting
from repro.obs.registry import WALL_BUCKETS, MetricsRegistry
from repro.obs.tracing import Tracer, shard_id_base

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.engine import Event, Simulator
    from repro.netsim.topology import Topology
    from repro.obs.convergence import ConvergenceMonitor

#: Packet-header key under which a :class:`~repro.obs.tracing.SpanContext`
#: rides along with every instrumented control message.
SPAN_HEADER = "spanctx"


class Observability:
    """One registry + one tracer, shared by every instrumented layer.

    ``shard`` (a partition rank) namespaces the tracer's id counter via
    :func:`~repro.obs.tracing.shard_id_base`, so span/trace ids minted
    by different partition workers never collide and per-worker span
    dumps stitch back into cross-shard trees when merged.
    """

    def __init__(self, shard: Optional[int] = None) -> None:
        self.shard = shard
        self.registry = MetricsRegistry()
        self.tracer = Tracer(
            id_base=shard_id_base(shard) if shard is not None else 0
        )
        #: Optional :class:`~repro.obs.convergence.ConvergenceMonitor`;
        #: instrumented protocol layers call :meth:`state_changed` on
        #: every durable state mutation and the monitor timestamps it.
        self.convergence: Optional["ConvergenceMonitor"] = None
        self._bound_sims: set[int] = set()

    def bind_simulator(self, sim: "Simulator") -> None:
        """Point the tracer clock at ``sim.now`` and install the
        dispatch listener (idempotent per simulator)."""
        self.tracer.clock = lambda: sim.now
        if id(sim) not in self._bound_sims:
            self._bound_sims.add(id(sim))
            instrument_simulator(sim, self.registry)

    def state_changed(self, count: int = 1) -> None:
        """Protocol hook: ``count`` durable state mutations happened
        (membership change, count update, upstream re-home). Batch-slot
        dispatch passes the number of folded per-event ops so the
        convergence monitor's change tally stays identical to per-event
        dispatch. No-op unless a convergence monitor is attached."""
        if self.convergence is not None:
            self.convergence.touch(count)


class NodeMetrics:
    """Per-node packet/byte counters, bound once per node."""

    __slots__ = ("node", "_packets", "_bytes")

    def __init__(self, registry: MetricsRegistry, node: str) -> None:
        self.node = node
        self._packets = registry.counter(
            "node_packets_total",
            "Packets seen at a node by direction and protocol",
            ("node", "direction", "proto"),
        )
        self._bytes = registry.counter(
            "node_bytes_total",
            "Bytes seen at a node by direction and protocol",
            ("node", "direction", "proto"),
        )

    def packet(self, direction: str, proto: str, size: int) -> None:
        labels = {"node": self.node, "direction": direction, "proto": proto}
        self._packets.labels(**labels).inc()
        self._bytes.labels(**labels).inc(size)


class LinkMetrics:
    """Per-link transmit/loss counters, bound once per link.

    The per-packet methods only bump plain integer attributes; the
    registry's :class:`~repro.core.accounting.LinkAccounting` collector
    folds the pending counts into its preallocated counter bank and the
    same four families below at every collect/snapshot boundary, so
    exporters see identical series without per-packet ``labels(...)``
    lookups on the data path.
    """

    __slots__ = (
        "link",
        "row",
        "p_packets",
        "p_lost",
        "p_ecmp_packets",
        "p_ecmp_bytes",
        "_c_packets",
        "_c_lost",
        "_c_ecmp_packets",
        "_c_ecmp_bytes",
    )

    def __init__(self, registry: MetricsRegistry, link: str) -> None:
        self.link = link
        self._c_packets = registry.counter(
            "link_packets_total", "Packets entering a link", ("link",)
        ).labels(link=link)
        self._c_lost = registry.counter(
            "link_lost_packets_total", "Packets lost in transit on a link", ("link",)
        ).labels(link=link)
        self._c_ecmp_packets = registry.counter(
            "link_ecmp_wire_packets_total",
            "ECMP control packets entering a link (batch frame counts as one)",
            ("link",),
        ).labels(link=link)
        self._c_ecmp_bytes = registry.counter(
            "link_ecmp_wire_bytes_total",
            "ECMP control bytes entering a link, post-coalescing",
            ("link",),
        ).labels(link=link)
        self.p_packets = 0
        self.p_lost = 0
        self.p_ecmp_packets = 0
        self.p_ecmp_bytes = 0
        self.row = link_accounting(registry).attach(self)

    def transmitted(self) -> None:
        self.p_packets += 1

    def lost(self) -> None:
        self.p_lost += 1

    def ecmp_wire(self, size: int) -> None:
        self.p_ecmp_packets += 1
        self.p_ecmp_bytes += size

    def take_pending(self) -> Optional[tuple]:
        """Drain the pending per-packet counts (flush protocol with
        :class:`~repro.core.accounting.LinkAccounting`); None when
        nothing is pending."""
        if not (
            self.p_packets or self.p_lost
            or self.p_ecmp_packets or self.p_ecmp_bytes
        ):
            return None
        pending = (
            self.p_packets, self.p_lost,
            self.p_ecmp_packets, self.p_ecmp_bytes,
        )
        self.p_packets = 0
        self.p_lost = 0
        self.p_ecmp_packets = 0
        self.p_ecmp_bytes = 0
        return pending


def instrument_simulator(sim: "Simulator", registry: MetricsRegistry) -> None:
    """Attach event-dispatch metrics to a simulator: per-event-name
    counts and wall-clock timing histograms, a live queue-depth gauge,
    and the simulated-clock gauge."""
    events_total = registry.counter(
        "sim_events_total", "Events dispatched by the engine", ("name",)
    )
    event_wall = registry.histogram(
        "sim_event_wall_seconds",
        "Wall-clock seconds spent executing one event",
        ("name",),
        buckets=WALL_BUCKETS,
    )
    queue_depth = registry.gauge(
        "sim_queue_depth", "Live (non-cancelled) events in the scheduler queue"
    )
    sim_clock = registry.gauge("sim_time_seconds", "Current simulated time")
    scheduler_stat = registry.gauge(
        "sim_scheduler_stat",
        "Scheduler internals (wheel: slots_scanned/cascades/insert split; "
        "heap: inserts), labelled by stat name",
        ("scheduler", "stat"),
    )

    def listener(simulator: "Simulator", event: "Event", wall: float) -> None:
        name = event.name or "(anonymous)"
        events_total.labels(name=name).inc()
        event_wall.labels(name=name).observe(wall)

    sim.add_dispatch_listener(listener)

    def collect() -> None:
        queue_depth.set(sim.pending())
        sim_clock.set(sim.now)
        stats = sim.scheduler_stats()
        which = stats.pop("scheduler")
        for stat, value in stats.items():
            if isinstance(value, (int, float)):
                scheduler_stat.labels(scheduler=which, stat=stat).set(value)

    registry.register_collector(collect)


class SyncMetrics:
    """Per-partition conservative-sync counters for the parallel runner.

    All families share the ``parallel_`` prefix so equivalence
    comparisons can exclude them wholesale: sync traffic exists only in
    sharded runs and legitimately has no single-process counterpart.
    """

    __slots__ = (
        "partition",
        "_null_messages",
        "_lbts_stalls",
        "_proxy_bytes",
        "_proxy_packets",
        "_import_bytes",
        "_import_packets",
        "_rounds",
        "_windows",
        "_frames",
        "_phase_seconds",
        "_events_per_sec",
        "_null_ratio",
    )

    def __init__(self, registry: MetricsRegistry, partition: int) -> None:
        self.partition = str(partition)
        self._null_messages = registry.counter(
            "parallel_null_messages_total",
            "Null-message/LBTS announcements sent by a partition worker",
            ("partition",),
        )
        self._lbts_stalls = registry.counter(
            "parallel_lbts_stalls_total",
            "Sync rounds where a worker had a runnable event past the "
            "global LBTS horizon and had to wait",
            ("partition",),
        )
        self._proxy_bytes = registry.counter(
            "parallel_proxy_bytes_total",
            "Serialized packet bytes exported across cut links",
            ("partition",),
        )
        self._proxy_packets = registry.counter(
            "parallel_proxy_packets_total",
            "Packets exported across cut links",
            ("partition",),
        )
        self._import_bytes = registry.counter(
            "parallel_proxy_import_bytes_total",
            "Serialized packet bytes imported across cut links (fleet "
            "totals must balance the export counters)",
            ("partition",),
        )
        self._import_packets = registry.counter(
            "parallel_proxy_import_packets_total",
            "Packets imported across cut links",
            ("partition",),
        )
        self._rounds = registry.counter(
            "parallel_sync_rounds_total",
            "Conservative-sync rounds (grants served) by a partition worker",
            ("partition",),
        )
        self._windows = registry.counter(
            "parallel_sync_windows_total",
            "Exclusive-horizon simulator windows drained by a partition "
            "worker (> rounds under multi-window demand grants)",
            ("partition",),
        )
        self._frames = registry.counter(
            "parallel_sync_frames_total",
            "Protocol frames a partition worker exchanged with the "
            "coordinator, by direction",
            ("partition", "direction"),
        )
        self._phase_seconds = registry.gauge(
            "parallel_phase_seconds",
            "Wall seconds a worker spent per phase "
            "(dispatch/cascade/sync_wait/idle) — the repartitioning signal",
            ("partition", "phase"),
        )
        self._events_per_sec = registry.gauge(
            "parallel_events_per_second",
            "Events dispatched per wall second by a partition worker",
            ("partition",),
        )
        self._null_ratio = registry.gauge(
            "parallel_null_message_ratio",
            "Fraction of a worker's reports that were pure clock "
            "announcements (no exports, no dispatched work)",
            ("partition",),
        )

    def null_message(self) -> None:
        self._null_messages.labels(partition=self.partition).inc()

    def lbts_stall(self) -> None:
        self._lbts_stalls.labels(partition=self.partition).inc()

    def proxy_export(self, size: int) -> None:
        self._proxy_packets.labels(partition=self.partition).inc()
        self._proxy_bytes.labels(partition=self.partition).inc(size)

    def proxy_import(self, size: int) -> None:
        self._import_packets.labels(partition=self.partition).inc()
        self._import_bytes.labels(partition=self.partition).inc(size)

    def sync_round(self, windows: int = 1) -> None:
        self._rounds.labels(partition=self.partition).inc()
        self._windows.labels(partition=self.partition).inc(windows)

    def set_phases(self, stats: "SyncStats") -> None:  # noqa: F821
        """Publish a worker's phase accounting as gauges, and flush the
        frame counters accumulated in the sync stats (called when the
        worker finalizes its telemetry)."""
        for phase, seconds in stats.phase_seconds().items():
            self._phase_seconds.labels(
                partition=self.partition, phase=phase
            ).set(seconds)
        self._events_per_sec.labels(partition=self.partition).set(
            stats.events_per_second()
        )
        self._null_ratio.labels(partition=self.partition).set(
            stats.null_message_ratio
        )
        sent = self._frames.labels(partition=self.partition, direction="sent")
        received = self._frames.labels(
            partition=self.partition, direction="received"
        )
        sent.inc(stats.frames_sent - sent.value)
        received.inc(stats.frames_received - received.value)


def attach_topology(topo: "Topology", obs: Observability) -> Observability:
    """Instrument an entire topology: the simulator, every node, every
    link. Nodes/links added afterwards are not retro-instrumented; call
    again after wiring if needed (re-attachment is idempotent)."""
    obs.bind_simulator(topo.sim)
    for node in topo.nodes.values():
        if node.metrics is None or node.metrics.node != node.name:
            node.metrics = NodeMetrics(obs.registry, node.name)
    for link in topo.links:
        if link.metrics is None:
            name = f"{link.node_a.name}--{link.node_b.name}"
            link.metrics = LinkMetrics(obs.registry, name)
    return obs
