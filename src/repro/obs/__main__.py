"""``python -m repro.obs`` — an instrumented end-to-end demo.

Builds a transit/stub ISP internetwork, runs an EXPRESS session on it
with full observability attached (metrics registry + causal tracer),
and prints:

* the CountQuery span tree (fan-out and aggregation reconstructed from
  trace context carried on every ECMP message) with its critical path,
* a Prometheus text snapshot of the registry (``--format prom``, the
  default), or the JSON-lines event dump (``--format jsonl``).

The span tree's leaves are exactly the subscribers that answered the
query — causality, not inference.

``python -m repro.obs diff A.json B.json`` instead diffs two metric
dumps (``BENCH_perf.json`` reports or JSONL scrapes) with per-metric
deltas and regression highlighting; see :mod:`repro.obs.diff`.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.network import ExpressNetwork
from repro.netsim.topology import TopologyBuilder
from repro.obs.exporters import events_to_jsonl, prometheus_text
from repro.obs.hooks import Observability


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run an instrumented EXPRESS session and export its "
        "metrics and traces.",
    )
    parser.add_argument("--transit", type=int, default=4,
                        help="transit routers in the ISP core (default 4)")
    parser.add_argument("--stubs", type=int, default=3,
                        help="stub routers per transit router (default 3)")
    parser.add_argument("--hosts", type=int, default=2,
                        help="hosts per stub router (default 2)")
    parser.add_argument("--subscribers", type=int, default=6,
                        help="subscribing hosts (default 6)")
    parser.add_argument("--packets", type=int, default=5,
                        help="data packets the source sends (default 5)")
    parser.add_argument("--seed", type=int, default=0,
                        help="simulation seed (default 0)")
    parser.add_argument("--format", choices=("prom", "jsonl"), default="prom",
                        help="export format (default prom)")
    parser.add_argument("--no-trace", action="store_true",
                        help="skip the span-tree rendering")
    return parser


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # ``diff`` is a subcommand with its own parser; everything else is
    # the original demo CLI (kept flag-compatible).
    if argv and argv[0] == "diff":
        from repro.obs.diff import main as diff_main

        return diff_main(argv[1:])
    args = build_parser().parse_args(argv)

    obs = Observability()
    topo = TopologyBuilder.isp(
        n_transit=args.transit,
        stubs_per_transit=args.stubs,
        hosts_per_stub=args.hosts,
        seed=args.seed,
    )
    net = ExpressNetwork(topo, obs=obs)
    net.run(until=0.1)

    source = net.source("h0_0_0")
    channel = source.allocate_channel()

    hosts = [name for name in sorted(topo.nodes) if name in net.host_names
             and name != "h0_0_0"]
    subscribers = hosts[: args.subscribers]
    for name in subscribers:
        net.host(name).subscribe(channel)
    net.settle()

    for _ in range(args.packets):
        source.send(channel)
        net.settle(0.1)

    result = source.count_query(channel, timeout=5.0)
    net.settle(6.0)

    print(f"# channel {channel}, source h0_0_0, "
          f"{len(subscribers)} subscribers on a "
          f"{args.transit}x{args.stubs}x{args.hosts} ISP topology",
          file=sys.stderr)
    print(f"# CountQuery -> {result.count} subscribers "
          f"(partial={result.partial})", file=sys.stderr)

    if not args.no_trace:
        tracer = obs.tracer
        roots = [s for s in tracer.spans if s.name == "ecmp.count_query"]
        for root in roots:
            print("# CountQuery span tree:", file=sys.stderr)
            for line in tracer.render(root.trace_id).splitlines():
                print(f"#   {line}", file=sys.stderr)
            latency, chain = tracer.critical_path(root.trace_id)
            path = " -> ".join(s.node for s in chain)
            print(f"# critical path: {path} ({latency * 1000:.3f} ms)",
                  file=sys.stderr)

    if args.format == "prom":
        sys.stdout.write(prometheus_text(obs.registry))
    else:
        sys.stdout.write(events_to_jsonl(obs.registry, obs.tracer))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
