"""Bounded ring buffer of recent activity, dumped on failure.

A sharded run that dies — worker exception, coordinator timeout,
SIGTERM from CI — loses its in-memory telemetry exactly when it is
most needed. The :class:`FlightRecorder` keeps the last N events and
spans per worker in a ``deque`` ring (O(1) per record, bounded memory)
and writes them to a JSONL file only when something goes wrong, so the
happy path pays almost nothing and the post-mortem gets the tail of
history that led to the failure.

Each JSONL line is one record; the first line is a header with the
dump reason, shard, and counts, so a directory of
``flight-<shard>.jsonl`` files from a dead fleet is self-describing.
"""

from __future__ import annotations

import json
import os
import signal
from collections import deque
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.engine import Event, Simulator
    from repro.obs.tracing import Span

#: Default ring capacity: enough tail to see the failing pattern,
#: small enough that an idle recorder is invisible in memory profiles.
DEFAULT_CAPACITY = 2048


class FlightRecorder:
    """Ring buffer of recent events/spans with JSONL dump-on-error."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        shard: Optional[int] = None,
    ) -> None:
        self.capacity = capacity
        self.shard = shard
        self._ring: deque[dict] = deque(maxlen=capacity)
        self.recorded = 0
        self.dumped_to: Optional[str] = None

    # -- recording -------------------------------------------------------

    def record(self, kind: str, **fields: object) -> None:
        """Append one freeform record to the ring."""
        entry = {"kind": kind}
        entry.update(fields)
        self._ring.append(entry)
        self.recorded += 1

    def record_span(self, span: "Span") -> None:
        self._ring.append(span.to_record())
        self.recorded += 1

    def attach(self, sim: "Simulator") -> None:
        """Record every dispatched event (name, simulated time, wall
        seconds). Uses the dispatch-listener hook, so it only costs
        anything when the simulator already runs listeners."""

        def listener(simulator: "Simulator", event: "Event", wall: float) -> None:
            self._ring.append({
                "kind": "event",
                "time": event.time,
                "name": event.name or "(anonymous)",
                "wall": wall,
            })
            self.recorded += 1

        sim.add_dispatch_listener(listener)

    def tail(self) -> list[dict]:
        """The ring's current contents, oldest first."""
        return list(self._ring)

    # -- dumping ---------------------------------------------------------

    def dump(self, path: str, reason: str) -> str:
        """Write the ring to ``path`` as JSONL (header line first).
        Creates parent directories; returns the path written."""
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({
                "kind": "flight_header",
                "reason": reason,
                "shard": self.shard,
                "entries": len(self._ring),
                "recorded": self.recorded,
                "capacity": self.capacity,
            }) + "\n")
            for entry in self._ring:
                handle.write(json.dumps(entry, default=str) + "\n")
        self.dumped_to = path
        return path

    def install_signal_handlers(self, path: str) -> None:
        """Dump on SIGTERM/SIGINT (CI timeouts, runner teardown), then
        re-deliver the default disposition so the process still dies
        with the conventional exit status."""

        def handler(signum, frame):  # pragma: no cover - signal path
            try:
                self.dump(path, reason=f"signal:{signal.Signals(signum).name}")
            finally:
                signal.signal(signum, signal.SIG_DFL)
                signal.raise_signal(signum)

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                signal.signal(signum, handler)
            except ValueError:  # pragma: no cover - non-main thread
                return
