"""Metric diffing: ``python -m repro.obs diff A.json B.json``.

Compares two metric dumps — either ``BENCH_perf.json`` reports from
``python -m repro.bench`` or JSONL metric dumps from
:func:`repro.obs.exporters.metrics_to_jsonl` — and prints per-metric
deltas with regressions highlighted. The input format is sniffed per
file, so a bench report can be compared against an earlier bench
report and a JSONL scrape against another JSONL scrape.

"Regression" is direction-aware: most counters moving is just a
different workload, but a metric whose *name* marks it as a cost
(``*_seconds``, ``*latency*``, ``*rss*``, ``null_message_ratio``) is
worse when it grows, while a benefit metric (``*_per_sec``,
``*speedup*``, ``*ratio``, ``*efficiency*``, cache/in-place fractions)
is worse when it shrinks. Metrics matching neither table are reported
as neutral deltas. The classification tables are deliberately small
and name-based — exactly the convention the registry's metric names
already follow.
"""

from __future__ import annotations

import json
import math
import sys
from typing import Iterable, Optional, TextIO

#: Name fragments marking a metric as a cost: growing is a regression.
LOWER_IS_BETTER = (
    "_seconds",
    "latency",
    "rss",
    "null_message",
    # Sync-tax economics (bench schema v7): frames on the wire per
    # useful event are overhead, as is the demand run's own null
    # ratio. (The ``*_reduction`` ratios land in the benefit table —
    # they never match here because no cost fragment appears in them.)
    "messages_per_event",
    "frames_per_round",
    "demand_null",
    "no_match_drops",
    "sync_wait",
    "idle",
    # Phase-breakdown fractions (engine profiler): time spent building
    # events or flushing metrics is overhead the native core exists to
    # shrink.
    "phase_breakdown.alloc",
    "phase_breakdown.accounting",
    # Control-plane refresh economics (bench schema v8): records the
    # refresh tick examines are pure overhead, and the fast path's
    # share of the legacy scan's examinations (``refresh_scan_fraction``
    # — matched here before the benefit table's ``fraction``) is the
    # tax the ring exists to shrink.
    "refresh_scan",
    "records_examined",
    # Robustness SLOs (bench schema v9): ``convergence_seconds`` is
    # already a cost via ``_seconds``; resync traffic, fault blast
    # radius, and orphaned state are recovery overhead — a run that
    # resyncs more bytes or churns more agents after the same fault
    # plan regressed. (``blast_radius`` must classify here despite no
    # benefit fragment; ``resync`` is matched before the benefit
    # table so ``resync_*`` counters never read as wins.)
    "resync",
    "blast_radius",
    "orphaned",
)

#: Name fragments marking a metric as a benefit: shrinking is a
#: regression. Checked *after* :data:`LOWER_IS_BETTER`, so e.g.
#: ``null_message_ratio`` classifies as a cost despite ``_ratio``.
HIGHER_IS_BETTER = (
    "_per_sec",
    "per_second",
    "speedup",
    "_ratio",
    "efficiency",
    "fraction",
    "reduction",
    "hits",
)


def direction(name: str) -> int:
    """+1 if higher is better, -1 if lower is better, 0 if neutral."""
    lowered = name.lower()
    if any(frag in lowered for frag in LOWER_IS_BETTER):
        return -1
    if any(frag in lowered for frag in HIGHER_IS_BETTER):
        return +1
    return 0


def flatten(obj, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested dict, keyed by dotted path.

    Bools and non-numeric leaves are dropped: the diff compares
    measurements, not configuration echoes.
    """
    out: dict[str, float] = {}
    if isinstance(obj, dict):
        for key, value in obj.items():
            out.update(flatten(value, f"{prefix}.{key}" if prefix else str(key)))
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[prefix] = float(obj)
    return out


def _metric_key(record: dict) -> str:
    labels = record.get("labels") or {}
    if labels:
        inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
        return f"{record['name']}{{{inner}}}"
    return str(record["name"])


def _flatten_jsonl(lines: Iterable[str]) -> dict[str, float]:
    out: dict[str, float] = {}
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("kind") != "metric":
            continue  # span records and flight entries are not diffable
        key = _metric_key(record)
        if "value" in record:
            out[key] = float(record["value"])
        else:  # histogram summary
            for field in ("count", "sum", "p50", "p90", "p99"):
                if field in record:
                    out[f"{key}.{field}"] = float(record[field])
    return out


def load_metrics(path: str) -> dict[str, float]:
    """Flat ``{metric: value}`` from a bench report or a JSONL dump."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if isinstance(payload, dict):  # one object: a bench report
            # Drop run metadata that only describes the environment.
            for noise in ("generated_at", "python_version", "platform"):
                payload.pop(noise, None)
            return flatten(payload)
    return _flatten_jsonl(text.splitlines())


def diff_metrics(
    old: dict[str, float], new: dict[str, float], threshold: float = 0.05
) -> list[dict]:
    """Per-metric delta rows, sorted worst regression first.

    Each row carries ``metric``, ``old``, ``new``, ``delta``, ``pct``
    (relative change, ``inf`` for new-from-zero), ``direction``, and
    ``regression`` (True when the metric moved against its direction by
    more than ``threshold``).
    """
    rows = []
    for name in sorted(old.keys() | new.keys()):
        a = old.get(name)
        b = new.get(name)
        delta = (b or 0.0) - (a or 0.0)
        if a in (None, 0.0):
            pct = math.inf if delta else 0.0
        else:
            pct = delta / abs(a)
        sense = direction(name)
        regression = (
            a is not None
            and b is not None
            and sense != 0
            and pct * sense < -threshold
        )
        rows.append(
            {
                "metric": name,
                "old": a,
                "new": b,
                "delta": delta,
                "pct": pct,
                "direction": sense,
                "regression": regression,
            }
        )
    rows.sort(key=lambda r: (not r["regression"], -abs(r["pct"]), r["metric"]))
    return rows


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:.6g}"


def render_diff(
    rows: list[dict],
    out: TextIO,
    changed_only: bool = True,
    color: bool = False,
) -> int:
    """Print the diff table; returns the number of regressions."""
    red, green, reset = ("\x1b[31m", "\x1b[32m", "\x1b[0m") if color else ("",) * 3
    regressions = 0
    shown = 0
    for row in rows:
        if changed_only and row["delta"] == 0.0 and row["old"] is not None:
            continue
        shown += 1
        pct = row["pct"]
        pct_text = "new" if pct == math.inf else f"{pct:+.1%}"
        mark = " "
        if row["regression"]:
            regressions += 1
            mark = f"{red}!{reset or '!'}" if color else "!"
        elif row["direction"] != 0 and row["pct"] * row["direction"] > 0:
            mark = f"{green}+{reset}" if color else "+"
        out.write(
            f"{mark} {row['metric']:<60s} {_fmt(row['old']):>16s} -> "
            f"{_fmt(row['new']):>16s}  ({pct_text})\n"
        )
    out.write(
        f"\n{shown} metrics changed, {regressions} regression"
        f"{'' if regressions == 1 else 's'}\n"
    )
    return regressions


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs diff",
        description="Diff two metric dumps (BENCH_perf.json or JSONL) "
        "with regression highlighting.",
    )
    parser.add_argument("old", help="baseline dump")
    parser.add_argument("new", help="candidate dump")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="relative change beyond which a direction-aware metric "
        "counts as a regression (default 0.05)",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="show unchanged metrics too",
    )
    parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit non-zero when any regression is found",
    )
    args = parser.parse_args(argv)

    rows = diff_metrics(
        load_metrics(args.old), load_metrics(args.new), threshold=args.threshold
    )
    regressions = render_diff(
        rows, sys.stdout, changed_only=not args.all, color=sys.stdout.isatty()
    )
    return 1 if (args.fail_on_regression and regressions) else 0
