"""The group-model facade: any-source multicast on a topology.

This is the world of the paper's §1: a group is just an address; *any*
host can send to it; receivers cannot restrict sources; there is no
subscriber count. :class:`GroupNetwork` runs either the PIM-SM-lite or
DVMRP-lite control plane and exposes join/leave/send — including
sending by hosts that never joined, which is exactly the property the
interference experiment (X7) measures.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.errors import ProtocolError, TopologyError
from repro.groupmodel.cbt import PROTO_CBT, CbtJoinLeave, CbtRouterAgent
from repro.groupmodel.dvmrp import DvmrpRouterAgent
from repro.groupmodel.pim import PROTO_PIM, PimJoinPrune, PimRouterAgent
from repro.inet.addr import format_address, is_class_d
from repro.netsim.node import Node, ProtocolAgent
from repro.netsim.packet import Packet
from repro.netsim.topology import Topology
from repro.netsim.trace import Counter
from repro.routing.unicast import UnicastRouting


class GroupHostAgent(ProtocolAgent):
    """A group-model host: joins groups and receives from *any* source."""

    def __init__(self, node: Node, net: "GroupNetwork") -> None:
        super().__init__(node)
        self.net = net
        self.joined: dict[int, Optional[Callable[[Packet], None]]] = {}
        self.received: dict[int, list] = {}
        #: Aggregated membership (see repro.core.blocks for the EXPRESS
        #: analogue): group -> member count behind this attachment
        #: point. Wire cost is one join/leave per 0↔positive transition
        #: regardless of the count; deliveries account arithmetically.
        self.block_members: dict[int, int] = {}
        self.stats = Counter()

    def handle_packet(self, packet: Packet, ifindex: int) -> None:
        if packet.proto != "data" or not is_class_d(packet.dst):
            return
        if packet.dst not in self.joined:
            self.stats.incr("unjoined_drops")
            return
        # The group model's defining behaviour: no source check.
        self.stats.incr("delivered")
        members = self.block_members.get(packet.dst)
        if members:
            self.stats.incr("block_deliveries", members)
        self.net._observe_delivery(
            self.node.name, packet.dst, self.sim.now - packet.created_at
        )
        self.received.setdefault(packet.dst, []).append(packet)
        callback = self.joined[packet.dst]
        if callback is not None:
            callback(packet)

    # ------------------------------------------------------------------

    def join(self, group: int, on_data: Optional[Callable[[Packet], None]] = None) -> None:
        if not is_class_d(group):
            raise ProtocolError(f"{group:#x} is not a group address")
        self.joined[group] = on_data
        self.net._host_joined(self.node.name, group)

    def leave(self, group: int) -> None:
        if group in self.joined:
            del self.joined[group]
            self.net._host_left(self.node.name, group)

    def join_block(
        self,
        group: int,
        n: int = 1,
        on_data: Optional[Callable[[Packet], None]] = None,
    ) -> int:
        """Add ``n`` aggregated members; one protocol join goes out on
        the 0→positive transition. Returns the new member count."""
        if n <= 0:
            raise ProtocolError(f"block join needs n >= 1, got {n}")
        current = self.block_members.get(group, 0)
        self.block_members[group] = current + n
        if current == 0 and group not in self.joined:
            self.join(group, on_data)
        return current + n

    def leave_block(self, group: int, n: int = 1) -> int:
        """Remove ``n`` aggregated members (clamped at zero); the
        protocol leave goes out when the count reaches zero."""
        if n <= 0:
            raise ProtocolError(f"block leave needs n >= 1, got {n}")
        current = self.block_members.get(group, 0)
        new = max(current - n, 0)
        if new:
            self.block_members[group] = new
        else:
            self.block_members.pop(group, None)
            if current > 0:
                self.leave(group)
        return new

    def send(self, group: int, payload=None, size: int = 1356) -> None:
        """Send to the group — joined or not; the model allows it."""
        packet = Packet(
            src=self.node.address,
            dst=group,
            proto="data",
            payload=payload,
            size=size,
            created_at=self.sim.now,
        )
        for iface in self.node.interfaces:
            self.node.send(packet.copy(), iface.index)
            break  # first-hop router only (hosts are single-homed here)


class GroupNetwork:
    """Any-source multicast over a :class:`Topology`.

    Parameters
    ----------
    protocol:
        "pim" (rendezvous-point shared trees; requires ``rp``),
        "cbt" (bidirectional core tree; ``rp`` names the core), or
        "dvmrp" (flood-and-prune).
    rp:
        RP router name for PIM / core router name for CBT.
    prune_lifetime:
        DVMRP prune expiry (seconds).
    obs:
        Optional :class:`repro.obs.Observability`. Instruments the
        topology and records control messages
        (``groupmodel_messages_total{protocol,type}``) and delivery
        latency into the same ``delivery_latency_seconds`` family the
        EXPRESS data plane uses, so the two models compare off one
        registry.
    """

    def __init__(
        self,
        topo: Topology,
        protocol: str = "pim",
        rp: Optional[str] = None,
        hosts: Optional[Iterable[str]] = None,
        prune_lifetime: float = 120.0,
        obs=None,
    ) -> None:
        if protocol not in ("pim", "cbt", "dvmrp"):
            raise ProtocolError(f"unknown group protocol {protocol!r}")
        if protocol in ("pim", "cbt") and (rp is None or rp not in topo.nodes):
            raise TopologyError(f"{protocol} needs an rp= (RP/core) router name")
        self.topo = topo
        self.sim = topo.sim
        self.protocol = protocol
        self.rp = rp
        self.obs = obs
        if obs is None:
            self._m_messages = self._m_delivery = None
        else:
            topo.attach_observability(obs)
            registry = obs.registry
            self._m_messages = registry.counter(
                "groupmodel_messages_total",
                "Group-model (ASM) control messages by protocol and type",
                ("protocol", "type"),
            )
            self._m_delivery = registry.histogram(
                "delivery_latency_seconds",
                "End-to-end data delivery latency from source emit to "
                "subscriber delivery",
                ("protocol", "node", "channel"),
            )
        self.routing = UnicastRouting(topo)
        if hosts is None:
            hosts = [
                name
                for name, node in topo.nodes.items()
                if len(node.interfaces) == 1 and name.startswith("h")
            ]
        self.host_names = set(hosts)
        self.hosts: dict[str, GroupHostAgent] = {}
        self.routers: dict[str, ProtocolAgent] = {}

        for name, node in topo.nodes.items():
            if name in self.host_names:
                agent = GroupHostAgent(node, self)
                node.register_agent("data", agent)
                self.hosts[name] = agent
            elif protocol == "pim":
                agent = PimRouterAgent(node, self.routing, rp_name=rp)
                node.register_agent("data", agent)
                node.register_agent(PROTO_PIM, agent)
                node.register_agent("ipip", agent)
                self.routers[name] = agent
            elif protocol == "cbt":
                agent = CbtRouterAgent(node, self.routing, core_name=rp)
                node.register_agent("data", agent)
                node.register_agent(PROTO_CBT, agent)
                node.register_agent("ipip", agent)
                self.routers[name] = agent
            else:
                agent = DvmrpRouterAgent(node, self.routing, prune_lifetime)
                agent.host_names = self.host_names
                node.register_agent("data", agent)
                node.register_agent("dvmrp", agent)
                self.routers[name] = agent

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def host(self, name: str) -> GroupHostAgent:
        try:
            return self.hosts[name]
        except KeyError:
            raise TopologyError(f"{name!r} is not a host") from None

    def join(self, host: str, group: int, on_data=None) -> None:
        self.host(host).join(group, on_data)

    def leave(self, host: str, group: int) -> None:
        self.host(host).leave(group)

    def join_block(self, host: str, group: int, n: int = 1, on_data=None) -> int:
        """Aggregated membership: ``n`` receivers behind ``host`` join
        as one counted entity (one wire join per 0↔positive transition;
        see :mod:`repro.core.blocks` for the EXPRESS analogue)."""
        return self.host(host).join_block(group, n, on_data)

    def leave_block(self, host: str, group: int, n: int = 1) -> int:
        return self.host(host).leave_block(group, n)

    def send(self, host: str, group: int, payload=None, size: int = 1356) -> None:
        self.host(host).send(group, payload=payload, size=size)

    def _first_hop_router(self, host: str) -> str:
        node = self.topo.node(host)
        neighbors = node.neighbors()
        if not neighbors:
            raise TopologyError(f"{host!r} has no attachment")
        return neighbors[0].name

    def _host_joined(self, host: str, group: int) -> None:
        router = self._first_hop_router(host)
        if self.protocol == "pim":
            self._send_join_prune(host, PimJoinPrune(group=group, join=True))
        elif self.protocol == "cbt":
            self._send_cbt(host, CbtJoinLeave(group=group, join=True))
        else:
            if self._m_messages is not None:
                self._m_messages.labels(protocol="dvmrp", type="join").inc()
            self.routers[router].host_joined(group, host)

    def _host_left(self, host: str, group: int) -> None:
        router = self._first_hop_router(host)
        if self.protocol == "pim":
            self._send_join_prune(host, PimJoinPrune(group=group, join=False))
        elif self.protocol == "cbt":
            self._send_cbt(host, CbtJoinLeave(group=group, join=False))
        else:
            if self._m_messages is not None:
                self._m_messages.labels(protocol="dvmrp", type="leave").inc()
            self.routers[router].host_left(group, host)

    def _observe_delivery(self, node: str, group: int, latency: float) -> None:
        """Record one host delivery into the shared latency histogram
        (same family as EXPRESS, labelled by this group protocol)."""
        if self._m_delivery is not None:
            self._m_delivery.labels(
                protocol=self.protocol, node=node, channel=format_address(group)
            ).observe(latency)

    def _send_cbt(self, host: str, message: CbtJoinLeave) -> None:
        node = self.topo.node(host)
        router = self.topo.node(self._first_hop_router(host))
        packet = Packet(
            src=node.address, dst=router.address, proto=PROTO_CBT, size=50,
            created_at=self.sim.now,
        )
        packet.headers["cbt"] = message
        packet.headers["reliable"] = True
        if self._m_messages is not None:
            self._m_messages.labels(
                protocol="cbt", type="join" if message.join else "leave"
            ).inc()
        node.send_to_neighbor(packet, router)

    def _send_join_prune(self, host: str, message: PimJoinPrune) -> None:
        node = self.topo.node(host)
        router = self.topo.node(self._first_hop_router(host))
        packet = Packet(
            src=node.address, dst=router.address, proto=PROTO_PIM, size=54,
            created_at=self.sim.now,
        )
        packet.headers["pim"] = message
        packet.headers["reliable"] = True
        if self._m_messages is not None:
            self._m_messages.labels(
                protocol="pim", type="join" if message.join else "prune"
            ).inc()
        node.send_to_neighbor(packet, router)

    def switch_to_spt(self, host: str, source_host: str, group: int) -> None:
        """PIM: the member's side joins the (S,G) shortest-path tree
        and suppresses shared-tree duplicates at its last-hop router."""
        if self.protocol != "pim":
            raise ProtocolError("SPT switchover is a PIM operation")
        source_address = self.topo.node(source_host).address
        self._send_join_prune(
            host, PimJoinPrune(group=group, join=True, source=source_address)
        )
        last_hop = self.routers[self._first_hop_router(host)]
        last_hop.spt_active.add((source_address, group))

    # ------------------------------------------------------------------
    # lifecycle / inspection
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> int:
        return self.topo.run(until=until)

    def settle(self, duration: float = 1.0) -> None:
        self.run(until=self.sim.now + duration)

    def delivered(self, host: str, group: int) -> int:
        return len(self.host(host).received.get(group, []))

    def total_state(self) -> int:
        return sum(agent.state_entries() for agent in self.routers.values())

    def routers_touched(self) -> set:
        if self.protocol == "pim":
            return {
                name
                for name, agent in self.routers.items()
                if agent.shared or agent.source_trees
            }
        if self.protocol == "cbt":
            return {name for name, agent in self.routers.items() if agent.state}
        return {name for name, agent in self.routers.items() if agent.touched()}
