"""CBT-lite: a running core-based bidirectional shared tree.

The third baseline of §7.1 (Ballardie's CBT, RFC 2201), live: members
join toward a configured core; data from an *on-tree* node flows along
the tree in every direction away from its arrival ("the use of a
bi-directional shared tree can provide faster delivery to subscribers
on the path from the sender to the [core]", §4.4); an *off-tree* sender
IP-in-IP-encapsulates to the core, which injects the packet into the
tree.

Simplifications (per the §4.4 comparison's needs): no core election or
keepalives, join acks are implicit (point-to-point links, reliable
control), and "on-tree sender" means the sender's first-hop router is
on the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ProtocolError
from repro.inet.addr import is_class_d
from repro.netsim.node import Node, ProtocolAgent
from repro.netsim.packet import Packet
from repro.netsim.trace import Counter
from repro.routing.unicast import UnicastRouting

PROTO_CBT = "cbt"
JOIN_BYTES = 30


@dataclass(frozen=True)
class CbtJoinLeave:
    """Hop-by-hop join (toward the core) or leave for ``group``."""

    group: int
    join: bool

    def __post_init__(self) -> None:
        if not is_class_d(self.group):
            raise ProtocolError(f"{self.group:#x} is not a group address")


@dataclass
class _CbtState:
    """Bidirectional tree adjacency on one router: the parent (toward
    the core) plus children, all treated alike by the data plane."""

    parent: Optional[str] = None
    children: set = field(default_factory=set)

    def tree_neighbors(self) -> set:
        neighbors = set(self.children)
        if self.parent is not None:
            neighbors.add(self.parent)
        return neighbors


class CbtRouterAgent(ProtocolAgent):
    """CBT-lite on one router."""

    def __init__(self, node: Node, routing: UnicastRouting, core_name: str) -> None:
        super().__init__(node)
        self.routing = routing
        self.core_name = core_name
        self.state: dict[int, _CbtState] = {}
        self.stats = Counter()

    # ------------------------------------------------------------------

    def handle_packet(self, packet: Packet, ifindex: int) -> None:
        if packet.proto == PROTO_CBT:
            message = packet.headers.get("cbt")
            peer = self._neighbor_name(ifindex)
            if isinstance(message, CbtJoinLeave) and peer is not None:
                self._handle_join_leave(message, peer)
        elif packet.proto == "ipip":
            self._handle_core_tunnel(packet)
        elif packet.proto == "data" and is_class_d(packet.dst):
            self._forward_data(packet, ifindex)

    def _handle_join_leave(self, message: CbtJoinLeave, from_name: str) -> None:
        self.stats.incr("join_rx" if message.join else "leave_rx")
        state = self.state.get(message.group)
        if message.join:
            if state is None:
                state = _CbtState(parent=self._upstream_toward_core())
                self.state[message.group] = state
                self._send_join_leave(message, state.parent)
            state.children.add(from_name)
        else:
            if state is None:
                return
            state.children.discard(from_name)
            if not state.children:
                self._send_join_leave(message, state.parent)
                del self.state[message.group]

    def _upstream_toward_core(self) -> Optional[str]:
        if self.core_name == self.node.name:
            return None
        return self.routing.next_hop(self.node.name, self.core_name)

    def _send_join_leave(self, message: CbtJoinLeave, neighbor: Optional[str]) -> None:
        if neighbor is None:
            return
        peer = self.routing.topo.nodes.get(neighbor)
        if peer is None:
            return
        packet = Packet(
            src=self.node.address,
            dst=peer.address,
            proto=PROTO_CBT,
            size=20 + JOIN_BYTES,
            created_at=self.sim.now,
        )
        packet.headers["cbt"] = message
        packet.headers["reliable"] = True
        self.stats.incr("join_tx" if message.join else "leave_tx")
        self.node.send_to_neighbor(packet, peer)

    # ------------------------------------------------------------------

    def _forward_data(self, packet: Packet, ifindex: int) -> None:
        group = packet.dst
        arrived_from = self._neighbor_name(ifindex)
        state = self.state.get(group)

        attached_source = self._is_attached_host(packet.src, arrived_from)
        if state is None:
            if attached_source:
                # Off-tree sender: tunnel to the core.
                self._tunnel_to_core(packet)
            else:
                self.stats.incr("no_state_drops")
            return

        # Bidirectional forwarding: a packet from any tree neighbor (or
        # a directly-attached sender) goes to every *other* tree
        # neighbor.
        if attached_source or arrived_from in state.tree_neighbors():
            self.stats.incr("tree_forwarded")
            self._fan_out(packet, state.tree_neighbors(), exclude=arrived_from)
        else:
            self.stats.incr("off_tree_drops")

    def _handle_core_tunnel(self, packet: Packet) -> None:
        if packet.dst != self.node.address:
            self._unicast_forward(packet)
            return
        if self.node.name != self.core_name or not packet.is_encapsulated():
            self.stats.incr("bad_tunnel_drops")
            return
        inner = packet.decapsulate()
        state = self.state.get(inner.dst)
        self.stats.incr("tunnels_rx")
        if state is None:
            self.stats.incr("tunnel_no_group_drops")
            return
        self._fan_out(inner, state.tree_neighbors(), exclude=None)

    def _tunnel_to_core(self, packet: Packet) -> None:
        core = self.routing.topo.nodes.get(self.core_name)
        if core is None:
            return
        outer = packet.encapsulate(
            outer_src=self.node.address, outer_dst=core.address, proto="ipip"
        )
        self.stats.incr("tunnels_tx")
        self._unicast_forward(outer)

    def _unicast_forward(self, packet: Packet) -> None:
        target = self.routing.topo.node_by_address(packet.dst)
        if target is None:
            return
        hop = self.routing.next_hop(self.node.name, target.name)
        if hop is None:
            return
        self.node.send_to_neighbor(packet, self.routing.topo.node(hop))

    def _fan_out(self, packet: Packet, neighbors, exclude: Optional[str]) -> None:
        for name in neighbors:
            if name == exclude:
                continue
            peer = self.routing.topo.nodes.get(name)
            if peer is None:
                continue
            copy = packet.copy()
            copy.ttl = packet.ttl - 1
            self.stats.incr("data_tx")
            self.node.send_to_neighbor(copy, peer)

    def _neighbor_name(self, ifindex: int) -> Optional[str]:
        iface = self.node.interfaces[ifindex]
        peer = iface.link.other_end(self.node) if iface.link else None
        return peer.name if peer else None

    def _is_attached_host(self, src_address: int, arrived_from: Optional[str]) -> bool:
        origin = self.routing.topo.node_by_address(src_address)
        return origin is not None and origin.name == arrived_from

    def state_entries(self) -> int:
        return len(self.state)
