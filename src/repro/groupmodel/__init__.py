"""Live group-model multicast: the world EXPRESS replaces.

:mod:`repro.routing.baselines` models PIM-SM/CBT/DVMRP analytically
(trees and state derived from unicast routing); this package implements
them as *running protocol agents* on the simulator, so the paper's §1
problems can be demonstrated on live packets:

* :mod:`repro.groupmodel.pim` — PIM-SM-lite: hop-by-hop Join/Prune
  toward a rendezvous point, register encapsulation of sources to the
  RP, shared-tree forwarding, and receiver-side switchover to
  source-specific trees.
* :mod:`repro.groupmodel.cbt` — CBT-lite: a bidirectional core-based
  tree with tunnelling for off-tree senders.
* :mod:`repro.groupmodel.dvmrp` — DVMRP-lite: RPF flood-and-prune with
  prune expiry and grafts.
* :mod:`repro.groupmodel.network` — the facade: any-source groups on a
  topology (the group model's defining — and, per §1, its problematic —
  property: *any* host can send to any group).
"""

from repro.groupmodel.cbt import CbtJoinLeave, CbtRouterAgent
from repro.groupmodel.dvmrp import DvmrpRouterAgent
from repro.groupmodel.network import GroupHostAgent, GroupNetwork
from repro.groupmodel.pim import PimJoinPrune, PimRouterAgent

__all__ = [
    "CbtJoinLeave",
    "CbtRouterAgent",
    "DvmrpRouterAgent",
    "GroupHostAgent",
    "GroupNetwork",
    "PimJoinPrune",
    "PimRouterAgent",
]
