"""DVMRP-lite: running flood-and-prune multicast.

The "non-scalable broadcast-and-prune behavior" EXPRESS eliminates
(§8): a source's first packets are broadcast along the RPF tree to the
*entire domain*; routers with no interested parties prune upstream,
prunes age out and the flood repeats, and grafts splice new members
back in. Implemented faithfully enough to measure exactly that
behaviour live: domain-wide first-packet footprint, prune state on
every router, and periodic re-flood.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ProtocolError
from repro.inet.addr import is_class_d
from repro.netsim.node import Node, ProtocolAgent
from repro.netsim.packet import Packet
from repro.netsim.trace import Counter
from repro.routing.unicast import UnicastRouting

PROTO_DVMRP = "dvmrp"
PROTO_DATA = "data"

#: Default prune lifetime; real DVMRP uses ~2 hours, scaled down so
#: tests can watch the re-flood.
PRUNE_LIFETIME = 120.0

CONTROL_BYTES = 28


@dataclass(frozen=True)
class DvmrpControl:
    """A Prune or Graft for (source, group)."""

    kind: str  # "prune" | "graft"
    source: int
    group: int

    def __post_init__(self) -> None:
        if self.kind not in ("prune", "graft"):
            raise ProtocolError(f"unknown DVMRP control {self.kind!r}")
        if not is_class_d(self.group):
            raise ProtocolError(f"{self.group:#x} is not a group address")


@dataclass
class _SourceGroupState:
    """Per-(S,G) prune bookkeeping."""

    #: Downstream neighbors that pruned, with prune expiry time.
    pruned: dict[str, float] = field(default_factory=dict)
    #: Whether we pruned ourselves toward the upstream.
    pruned_upstream: bool = False
    packets_seen: int = 0


class DvmrpRouterAgent(ProtocolAgent):
    """Flood-and-prune on one router."""

    def __init__(
        self,
        node: Node,
        routing: UnicastRouting,
        prune_lifetime: float = PRUNE_LIFETIME,
    ) -> None:
        super().__init__(node)
        self.routing = routing
        self.prune_lifetime = prune_lifetime
        self.state: dict[tuple[int, int], _SourceGroupState] = {}
        #: Hosts attached to this router that joined each group.
        self.member_hosts: dict[int, set] = {}
        #: Names of host nodes (injected by the GroupNetwork facade so
        #: the flood is "truncated": hosts only get joined groups).
        self.host_names: set = set()
        self.stats = Counter()

    # ------------------------------------------------------------------

    def host_joined(self, group: int, host_name: str) -> None:
        """A directly-attached host joined; graft any pruned (.,group)
        state back toward the sources."""
        self.member_hosts.setdefault(group, set()).add(host_name)
        for (source, state_group), state in self.state.items():
            if state_group != group or not state.pruned_upstream:
                continue
            state.pruned_upstream = False
            self._send_control("graft", source, group)

    def host_left(self, group: int, host_name: str) -> None:
        members = self.member_hosts.get(group)
        if members is not None:
            members.discard(host_name)
            if not members:
                del self.member_hosts[group]

    # ------------------------------------------------------------------

    def handle_packet(self, packet: Packet, ifindex: int) -> None:
        if packet.proto == PROTO_DVMRP:
            message = packet.headers.get("dvmrp")
            peer = self._neighbor_name(ifindex)
            if isinstance(message, DvmrpControl) and peer is not None:
                self._handle_control(message, peer)
        elif packet.proto == PROTO_DATA and is_class_d(packet.dst):
            self._forward_data(packet, ifindex)

    def _handle_control(self, message: DvmrpControl, from_name: str) -> None:
        state = self.state.setdefault(
            (message.source, message.group), _SourceGroupState()
        )
        if message.kind == "prune":
            self.stats.incr("prunes_rx")
            state.pruned[from_name] = self.sim.now + self.prune_lifetime
            # If everything downstream is now pruned and we have no
            # members, propagate the prune.
            self._maybe_prune_upstream(message.source, message.group, state)
        else:  # graft
            self.stats.incr("grafts_rx")
            state.pruned.pop(from_name, None)
            if state.pruned_upstream:
                state.pruned_upstream = False
                self._send_control("graft", message.source, message.group)

    def _forward_data(self, packet: Packet, ifindex: int) -> None:
        source_node = self.routing.topo.node_by_address(packet.src)
        if source_node is None:
            self.stats.incr("unknown_source_drops")
            return
        arrived_from = self._neighbor_name(ifindex)
        # RPF check: accept only on the interface toward the source
        # (or directly from the attached source host).
        expected = (
            source_node.name
            if source_node.name == arrived_from
            else self.routing.next_hop(self.node.name, source_node.name)
        )
        if arrived_from != expected:
            self.stats.incr("rpf_drops")
            return

        key = (packet.src, packet.dst)
        state = self.state.setdefault(key, _SourceGroupState())
        state.packets_seen += 1
        self.stats.incr("data_rx")
        self._expire_prunes(state)

        forwarded = 0
        # Flood to every router neighbor except the arrival and pruned
        # ones, plus member hosts.
        for iface in self.node.interfaces:
            peer = iface.neighbor()
            if peer is None or not iface.up or peer.name == arrived_from:
                continue
            if peer.name in state.pruned:
                continue
            if self._is_host(peer.name):
                members = self.member_hosts.get(packet.dst, set())
                if peer.name not in members:
                    continue
            copy = packet.copy()
            copy.ttl = packet.ttl - 1
            self.stats.incr("data_tx")
            self.node.send(copy, iface.index)
            forwarded += 1

        if forwarded == 0:
            # Leaf with no interest: prune toward the source.
            self._maybe_prune_upstream(packet.src, packet.dst, state)

    def _maybe_prune_upstream(self, source: int, group: int, state: _SourceGroupState) -> None:
        if state.pruned_upstream:
            return
        if self.member_hosts.get(group):
            return
        # Unpruned downstream router neighbors still want traffic.
        source_node = self.routing.topo.node_by_address(source)
        upstream = (
            self.routing.next_hop(self.node.name, source_node.name)
            if source_node is not None and source_node is not self.node
            else None
        )
        for iface in self.node.interfaces:
            peer = iface.neighbor()
            if peer is None or not iface.up:
                continue
            if peer.name == upstream or self._is_host(peer.name):
                continue
            if peer.name not in state.pruned:
                return  # someone downstream may still want it
        if upstream is not None:
            state.pruned_upstream = True
            self._send_control("prune", source, group)

    def _send_control(self, kind: str, source: int, group: int) -> None:
        source_node = self.routing.topo.node_by_address(source)
        if source_node is None or source_node is self.node:
            return
        upstream = self.routing.next_hop(self.node.name, source_node.name)
        if upstream is None:
            return
        peer = self.routing.topo.nodes.get(upstream)
        packet = Packet(
            src=self.node.address,
            dst=peer.address,
            proto=PROTO_DVMRP,
            size=20 + CONTROL_BYTES,
            created_at=self.sim.now,
        )
        packet.headers["dvmrp"] = DvmrpControl(kind=kind, source=source, group=group)
        packet.headers["reliable"] = True
        self.stats.incr(f"{kind}s_tx")
        self.node.send_to_neighbor(packet, peer)

    def _expire_prunes(self, state: _SourceGroupState) -> None:
        now = self.sim.now
        expired = [name for name, expiry in state.pruned.items() if expiry <= now]
        for name in expired:
            del state.pruned[name]
            self.stats.incr("prune_expirations")

    def _neighbor_name(self, ifindex: int) -> Optional[str]:
        iface = self.node.interfaces[ifindex]
        peer = iface.link.other_end(self.node) if iface.link else None
        return peer.name if peer else None

    def _is_host(self, name: str) -> bool:
        return name in self.host_names

    def state_entries(self) -> int:
        return len(self.state)

    def touched(self) -> bool:
        """Did any (S,G) activity reach this router?"""
        return bool(self.state)
