"""PIM-SM-lite: a running rendezvous-point shared-tree protocol.

Implements the parts of PIM-SM the paper compares EXPRESS against
(§3.6, §7.1): explicit Join/Prune toward a configured RP, sources
reaching the group by *register* encapsulation to the RP, shared-tree
forwarding, and per-receiver switchover to an (S,G) shortest-path tree
— "the higher delay of a shared multicast tree rooted at the rendezvous
point [or] the extra state cost of source-specific trees" (§4.4).

Simplifications relative to RFC 2117 (documented; none affect the
measured claims): no bootstrap/RP-set election (the RP is configured),
no RegisterStop (the last-hop router suppresses shared-tree duplicates
once its SPT is active — the "SPT bit" in spirit), no Assert election
(point-to-point links), and Join/Prune is per-neighbor unicast rather
than multicast to ALL-PIM-ROUTERS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ProtocolError
from repro.inet.addr import is_class_d
from repro.netsim.node import Node, ProtocolAgent
from repro.netsim.packet import Packet
from repro.netsim.trace import Counter
from repro.routing.unicast import UnicastRouting

PROTO_PIM = "pim"
PROTO_DATA = "data"
PROTO_REGISTER = "ipip"

#: Wire size of a Join/Prune message (group + optional source + flags),
#: for control-bandwidth accounting.
JOIN_PRUNE_BYTES = 34


@dataclass(frozen=True)
class PimJoinPrune:
    """A hop-by-hop Join (``join=True``) or Prune for ``group``;
    ``source`` selects the (S,G) source tree, None the (*,G) RP tree."""

    group: int
    join: bool
    source: Optional[int] = None

    def __post_init__(self) -> None:
        if not is_class_d(self.group):
            raise ProtocolError(f"{self.group:#x} is not a group address")


@dataclass
class _TreeState:
    """(*,G) or (S,G) state on one router."""

    upstream: Optional[str] = None
    oifs: set = field(default_factory=set)  # downstream neighbor names


class PimRouterAgent(ProtocolAgent):
    """PIM-SM-lite on one router."""

    def __init__(self, node: Node, routing: UnicastRouting, rp_name: str) -> None:
        super().__init__(node)
        self.routing = routing
        self.rp_name = rp_name
        #: (*,G) shared-tree state per group.
        self.shared: dict[int, _TreeState] = {}
        #: (S,G) source-tree state per (source address, group).
        self.source_trees: dict[tuple[int, int], _TreeState] = {}
        #: Last-hop SPT-bit emulation: (S,G) pairs whose shared-tree
        #: copies this router now suppresses.
        self.spt_active: set = set()
        self.stats = Counter()

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------

    def handle_packet(self, packet: Packet, ifindex: int) -> None:
        if packet.proto == PROTO_PIM:
            message = packet.headers.get("pim")
            iface = self.node.interfaces[ifindex]
            peer = iface.link.other_end(self.node) if iface.link else None
            if isinstance(message, PimJoinPrune) and peer is not None:
                self._handle_join_prune(message, peer.name)
        elif packet.proto == PROTO_REGISTER:
            self._handle_register(packet, ifindex)
        elif packet.proto == PROTO_DATA and is_class_d(packet.dst):
            self._forward_data(packet, ifindex)

    def _handle_join_prune(self, message: PimJoinPrune, from_name: str) -> None:
        self.stats.incr("join_rx" if message.join else "prune_rx")
        if message.source is None:
            state = self.shared.get(message.group)
            if message.join:
                if state is None:
                    state = _TreeState(upstream=self._upstream_toward(self.rp_name))
                    self.shared[message.group] = state
                    self._send_join_prune(message, state.upstream)
                state.oifs.add(from_name)
            else:
                if state is None:
                    return
                state.oifs.discard(from_name)
                if not state.oifs:
                    self._send_join_prune(message, state.upstream)
                    del self.shared[message.group]
            return

        key = (message.source, message.group)
        source_node = self.routing.topo.node_by_address(message.source)
        if source_node is None:
            return
        state = self.source_trees.get(key)
        if message.join:
            if state is None:
                state = _TreeState(upstream=self._upstream_toward(source_node.name))
                self.source_trees[key] = state
                if state.upstream is not None:
                    self._send_join_prune(message, state.upstream)
            state.oifs.add(from_name)
        else:
            if state is None:
                return
            state.oifs.discard(from_name)
            if not state.oifs:
                if state.upstream is not None:
                    self._send_join_prune(message, state.upstream)
                del self.source_trees[key]

    def _upstream_toward(self, target: str) -> Optional[str]:
        if target == self.node.name:
            return None
        return self.routing.next_hop(self.node.name, target)

    def _send_join_prune(self, message: PimJoinPrune, neighbor: Optional[str]) -> None:
        if neighbor is None:
            return
        peer = self.routing.topo.nodes.get(neighbor)
        if peer is None:
            return
        packet = Packet(
            src=self.node.address,
            dst=peer.address,
            proto=PROTO_PIM,
            size=20 + JOIN_PRUNE_BYTES,
            created_at=self.sim.now,
        )
        packet.headers["pim"] = message
        packet.headers["reliable"] = True
        self.stats.incr("join_tx" if message.join else "prune_tx")
        self.node.send_to_neighbor(packet, peer)

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------

    def _forward_data(self, packet: Packet, ifindex: int) -> None:
        group = packet.dst
        arrived_from = self._neighbor_name(ifindex)

        # A directly-attached host sourcing to the group: this router
        # is the DR; encapsulate to the RP ("register").
        if self._is_attached_host(packet.src, arrived_from):
            self._register_to_rp(packet)
            # Natively feed an (S,G) tree rooted here, if one exists.
            spt = self.source_trees.get((packet.src, group))
            if spt is not None:
                self._fan_out(packet, spt.oifs, exclude=arrived_from)
            return

        spt = self.source_trees.get((packet.src, group))
        shared = self.shared.get(group)
        oifs: set = set()
        accepted = False

        if spt is not None and arrived_from == spt.upstream:
            accepted = True
            self.stats.incr("spt_forwarded")
            oifs |= spt.oifs
            # At the RP, the native (S,G) flow also feeds the shared
            # tree (which is why registers for it are suppressed).
            if shared is not None and self.node.name == self.rp_name:
                oifs |= shared.oifs

        if not accepted and shared is not None and arrived_from == shared.upstream:
            if (packet.src, group) in self.spt_active:
                self.stats.incr("spt_suppressed")
                return
            accepted = True
            self.stats.incr("shared_forwarded")
            oifs |= shared.oifs

        if not accepted:
            if spt is None and shared is None:
                self.stats.incr("no_state_drops")
            else:
                self.stats.incr("wrong_iface_drops")
            return
        self._fan_out(packet, oifs, exclude=arrived_from)

    def _handle_register(self, packet: Packet, ifindex: int) -> None:
        if packet.dst != self.node.address:
            # In transit to the RP: unicast-forward.
            self._unicast_forward(packet)
            return
        if not packet.is_encapsulated():
            self.stats.incr("bad_register_drops")
            return
        inner = packet.decapsulate()
        self.stats.incr("registers_rx")
        if (inner.src, inner.dst) in self.source_trees:
            # RegisterStop-equivalent: the RP already receives this
            # (S,G) natively on its source tree; the register copy is
            # redundant.
            self.stats.incr("registers_suppressed")
            return
        state = self.shared.get(inner.dst)
        if state is None:
            self.stats.incr("register_no_group_drops")
            return
        # The RP multicasts the decapsulated packet down the shared tree.
        self._fan_out(inner, state.oifs, exclude=None)

    def _register_to_rp(self, packet: Packet) -> None:
        rp = self.routing.topo.nodes.get(self.rp_name)
        if rp is None:
            return
        if rp is self.node:
            # This router *is* the RP: short-circuit the register (but
            # never echo back to the attached sender's own port).
            state = self.shared.get(packet.dst)
            if state is not None:
                origin = self.routing.topo.node_by_address(packet.src)
                self._fan_out(
                    packet, state.oifs, exclude=origin.name if origin else None
                )
            return
        outer = packet.encapsulate(
            outer_src=self.node.address, outer_dst=rp.address, proto=PROTO_REGISTER
        )
        self.stats.incr("registers_tx")
        self._unicast_forward(outer)

    def _unicast_forward(self, packet: Packet) -> None:
        target = self.routing.topo.node_by_address(packet.dst)
        if target is None:
            return
        hop = self.routing.next_hop(self.node.name, target.name)
        if hop is None:
            return
        self.node.send_to_neighbor(packet, self.routing.topo.node(hop))

    def _fan_out(self, packet: Packet, oifs, exclude: Optional[str]) -> None:
        for name in oifs:
            if name == exclude:
                continue
            peer = self.routing.topo.nodes.get(name)
            if peer is None:
                continue
            copy = packet.copy()
            copy.ttl = packet.ttl - 1
            self.stats.incr("data_tx")
            self.node.send_to_neighbor(copy, peer)

    def _neighbor_name(self, ifindex: int) -> Optional[str]:
        iface = self.node.interfaces[ifindex]
        peer = iface.link.other_end(self.node) if iface.link else None
        return peer.name if peer else None

    def _is_attached_host(self, src_address: int, arrived_from: Optional[str]) -> bool:
        origin = self.routing.topo.node_by_address(src_address)
        return origin is not None and origin.name == arrived_from

    # -- inspection ----------------------------------------------------------

    def state_entries(self) -> int:
        return len(self.shared) + len(self.source_trees)
