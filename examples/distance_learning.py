#!/usr/bin/env python
"""Distance learning: the paper's canonical "almost single-source"
application (§4), built on the session-relay middleware.

A lecturer multicasts over the session relay's channel; students ask
questions through the SR, which enforces floor control ("one question
is transmitted to the audience at a time ... no member disrupts the
session with excessive questions"); a guest speaker switches to a
direct channel (§4.1); and a hot-standby SR takes over when the
primary fails (§4.2).

Run:  python examples/distance_learning.py
"""

from repro import ExpressNetwork, TopologyBuilder
from repro.relay import (
    FloorControl,
    SessionParticipant,
    SessionRelay,
    StandbyCoordinator,
    StandbyMode,
    direct_channel_switchover,
)


def main() -> None:
    topo = TopologyBuilder.isp(n_transit=3, stubs_per_transit=2, hosts_per_stub=2)
    net = ExpressNetwork(topo)
    net.run(until=0.1)

    # The SR host is application-selected (§4.2): pick one near the
    # topological center rather than wherever the lecturer happens to
    # be — here a host on transit 0.
    floor = FloorControl(moderator="h0_0_0", max_questions=2)
    lecture = SessionRelay(net, "h0_0_0", floor=floor, heartbeat_interval=1.0)
    backup = SessionRelay(net, "h0_1_0", heartbeat_interval=1.0)
    standby = StandbyCoordinator(net, lecture, backup, mode=StandbyMode.HOT)

    students = [
        SessionParticipant(net, name, lecture)
        for name in ("h1_0_0", "h1_0_1", "h1_1_0", "h2_0_0", "h2_1_1")
    ]
    for student in students:
        standby.enroll(student)
    net.settle()
    print(f"lecture channel {lecture.channel}; {len(students)} students")

    # The lecturer (resident on the SR) teaches.
    lecture.speak_from_relay("Welcome to Networking 101.")
    net.settle()

    # A student barges in without the floor: blocked by the SR.
    students[0].speak("me first!")
    net.settle()
    print(f"barge-in blocked by floor control: {lecture.blocked == 1}")

    # Proper flow: request the floor, ask, release. (Release only
    # after the question has propagated — a small control packet can
    # otherwise overtake the larger media packet hop-by-hop.)
    students[0].request_floor()
    net.settle()
    students[0].speak("What is reverse-path forwarding?")
    net.settle()
    students[0].release_floor()
    net.settle()
    heard = [m.body for m in students[3].heard_talks]
    print(f"student h2_0_0 heard: {heard}")

    # A guest speaker will talk for a while: switch to a direct channel
    # (§4.1) to skip the relay hop.
    guest = "h2_0_0"
    direct = direct_channel_switchover(net, lecture, guest, students)
    net.settle()
    net.source(guest).send(direct, payload="Guest lecture, part 1")
    net.settle()
    relay_hops = (
        net.routing.hop_count(guest, "h0_0_0")
        + net.routing.hop_count("h0_0_0", "h1_0_0")
    )
    direct_hops = net.routing.hop_count(guest, "h1_0_0")
    print(f"direct channel saves {relay_hops - direct_hops} hops to h1_0_0 "
          f"({relay_hops} via SR -> {direct_hops} direct)")

    # Primary SR dies mid-lecture; hot standby takes over.
    standby.fail_primary()
    net.run(until=net.sim.now + 10)
    backup.speak_from_relay("This is the backup relay; carrying on.")
    net.run(until=net.sim.now + 5)
    print(f"failed over: {sorted(standby.failed_over)}")
    print(f"all students recovered on backup channel: {standby.all_recovered()}")
    times = standby.recovery_times()
    if times:
        print(f"worst-case recovery: {max(times.values()):.2f}s "
              f"(detection-dominated; hot standby pre-subscribes)")


if __name__ == "__main__":
    main()
