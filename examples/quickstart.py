#!/usr/bin/env python
"""Quickstart: one EXPRESS channel end to end.

Builds a small two-level ISP topology, allocates a channel at a source
host (no global address coordination — §2.2.1), subscribes three hosts,
sends a packet, and polls the subscriber count with ECMP's CountQuery.

Run:  python examples/quickstart.py
"""

from repro import ExpressNetwork, TopologyBuilder


def main() -> None:
    # A 3-transit ISP-like internetwork: t* core, e* edge, h* hosts.
    topo = TopologyBuilder.isp(n_transit=3, stubs_per_transit=2, hosts_per_stub=2)
    net = ExpressNetwork(topo)
    net.run(until=0.1)  # let agents start

    # The source allocates one of its 2^24 channels locally.
    source = net.source("h0_0_0")
    channel = source.allocate_channel()
    print(f"channel {channel} allocated by h0_0_0")

    # Subscribers explicitly request (S, E).
    received = []
    for name in ("h1_0_0", "h1_1_1", "h2_0_1"):
        net.host(name).subscribe(
            channel, on_data=lambda pkt, who=name: received.append(who)
        )
    net.settle()

    print("distribution tree (parent -> child):")
    for parent, child in net.tree_edges(channel):
        print(f"  {parent} -> {child}")

    # Only the designated source may send; the network fans out along
    # the reverse shortest-path tree.
    source.send(channel, payload=b"hello, subscribers")
    net.settle()
    print(f"delivered to: {sorted(set(received))}")

    # Count the subscribers (the ISP's billing signal, §2.2.3).
    result = source.count_query(channel, timeout=5.0)
    net.settle(6.0)
    print(f"subscriber count: {result.count} (partial={result.partial})")

    print(f"total FIB entries in the network: {net.fib_entries_total()}"
          f" ({net.fib_bytes_total()} bytes at 12 B/entry)")


if __name__ == "__main__":
    main()
