#!/usr/bin/env python
"""Internet TV: the paper's "sports-tv.net Super Bowl" scenario (§1).

Demonstrates the three problems EXPRESS solves for a large
single-source broadcast:

1. **Source exclusivity** — a third party cannot inject traffic into
   the channel "at the moment of the crucial touchdown".
2. **Authenticated subscriptions** — a pay-per-view variant where only
   key holders can subscribe (§2.1 channelKey).
3. **Counting** — the ISP reads the subscriber count for billing, and
   the station runs a viewer poll over millions of (here: dozens of)
   subscribers with a handful of packets (§2.2.1).

Run:  python examples/internet_tv.py
"""

from repro import ExpressNetwork, TopologyBuilder, make_key
from repro.core.ecmp.countids import APPLICATION_RANGE
from repro.core.keys import ChannelKey
from repro.netsim.packet import Packet

POLL_ID = APPLICATION_RANGE.start + 1  # "was that a touchdown?"


def main() -> None:
    topo = TopologyBuilder.isp(n_transit=4, stubs_per_transit=3, hosts_per_stub=3)
    net = ExpressNetwork(topo)
    net.run(until=0.1)

    station = net.source("h0_0_0")
    feed = station.allocate_channel()
    key = make_key(feed, secret=b"sports-tv.net pay-per-view")
    station.channel_key(feed, key)
    print(f"sports-tv.net feed: {feed} (authenticated)")

    # Paying viewers got the key out of band; one freeloader did not.
    viewers = [f"h{t}_{s}_{k}" for t in (1, 2, 3) for s in range(3) for k in range(3)]
    frames = {name: 0 for name in viewers}
    for name in viewers:
        def on_frame(pkt: Packet, who=name) -> None:
            frames[who] += 1
        net.host(name).subscribe(feed, key=key, on_data=on_frame)
    freeloader = net.host("h0_1_0").subscribe(feed, key=ChannelKey(b"scalped!"))
    net.settle()
    print(f"freeloader subscription: {freeloader.status}")

    # The game is on: a 4 Mbit/s MPEG-2 feed (1356-byte packets).
    for _ in range(10):
        station.send(feed)
    net.settle()

    # A disgruntled third party blasts the channel address (§1's
    # interference attack). Its (S', E) traffic matches no FIB entry
    # anywhere and is counted and dropped (§3.4).
    attacker = net.forwarders["h3_2_2"]
    for _ in range(50):
        attacker.node.send(
            Packet(src=net.host("h3_2_2").address, dst=feed.group, proto="data"), 0
        )
    net.settle()

    clean = sum(1 for name in viewers if frames[name] == 10)
    print(f"viewers with a clean 10-frame feed: {clean}/{len(viewers)}")
    drops = sum(fib.no_match_drops for fib in net.fibs.values())
    print(f"attack packets counted-and-dropped at routers: {drops}")

    # ISP billing: how big is this channel?
    count = station.count_query(feed, timeout=5.0)
    net.settle(6.0)
    print(f"ISP-visible subscriber count: {count.count}")

    # Half-time poll: each viewer's set-top box answers 1 for "yes".
    for i, name in enumerate(viewers):
        net.host(name).respond_to_count(feed, POLL_ID, lambda vote=i % 3: int(vote != 0))
    poll = station.count_query(feed, POLL_ID, timeout=5.0)
    net.settle(6.0)
    print(f"poll: {poll.count}/{count.count} voted yes "
          f"(collected with ~{len(net.tree_edges(feed))} control messages, "
          f"not {count.count} unicast replies)")


if __name__ == "__main__":
    main()
