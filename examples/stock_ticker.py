#!/usr/bin/env python
"""Stock ticker: the paper's long-running large-channel example (§5.1),
with churn, proactive counting (§6), and the cost models.

A ticker channel runs while subscribers come and go (Poisson churn).
Instead of polling, the source enables proactive counting so the
network pushes count updates only when they exceed the tolerance curve
— and the §5 cost models price the whole thing.

Run:  python examples/stock_ticker.py
"""

from repro import CountPropagation, ExpressNetwork, ToleranceCurve, TopologyBuilder
from repro.costmodel import FibCostModel, ManagementStateModel
from repro.workloads import poisson_churn, schedule_churn


def main() -> None:
    # A 64-leaf distribution tree; leaves are subscriber hosts.
    depth, fanout = 3, 4
    topo = TopologyBuilder.balanced_tree(depth=depth, fanout=fanout)
    topo.add_node("ticker")
    topo.add_link("ticker", "r", delay=0.001)
    leaves = [f"d{depth}_{i}" for i in range(fanout**depth)]

    curve = ToleranceCurve(e_max=1.0, alpha=4.0, tau=60.0)
    net = ExpressNetwork(
        topo,
        hosts=leaves + ["ticker"],
        propagation=CountPropagation.PROACTIVE,
        proactive_curve=curve,
    )
    net.run(until=0.1)

    source = net.source("ticker")
    channel = source.allocate_channel()

    # An hour of churn: subscribers hold for ~20 min, stay away ~10.
    events = poisson_churn(
        leaves, duration=3600, mean_off_time=600, mean_on_time=1200, seed=7
    )
    schedule_churn(net, channel, events)

    # Tick every second while the churn plays out.
    def tick() -> None:
        source.send(channel, size=256)

    for t in range(60, 3600, 60):
        net.sim.schedule_at(float(t), tick)
    net.run(until=3600)

    agent = net.ecmp_agents["ticker"]
    actual = len(net.subscriber_hosts(channel))
    estimate = agent.subscriber_count_estimate(channel)
    print(f"after 1h: actual subscribers={actual}, proactive estimate={estimate}")
    print(f"count messages delivered to source: {agent.stats.get('counts_rx')}"
          f" (vs {len(events)} churn events network-wide)")

    # Price it with the paper's models.
    fib = FibCostModel()
    entries = net.fib_entries_total()
    print(f"\nFIB state right now: {entries} entries "
          f"({entries * 12} bytes of fast-path SRAM)")
    print(f"yearly FIB cost at 1998 prices: ${fib.yearly_cost(entries):.2f}")

    mgmt = ManagementStateModel()
    channels_on_router = 1
    print(f"management state per channel: {mgmt.channel_bytes()} bytes "
          f"(${mgmt.channel_cost_dollars():.6f}/channel-year)")

    # Scale thought experiment: the paper's 100k-subscriber ticker.
    big = 200_000  # tree links
    print(f"paper's 100k-subscriber ticker, {big} links: "
          f"${fib.yearly_cost(big):,.0f}/yr "
          f"= {fib.yearly_cost(big) / 100_000 * 100:.1f} cents/subscriber-year")


if __name__ == "__main__":
    main()
