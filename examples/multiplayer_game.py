#!/usr/bin/env python
"""Multi-player game: a truly multi-source application (§4.4).

"Going beyond almost single-source multicast applications, multi-source
video conferencing or small multi-player games can be implemented using
either a separate channel for each source, or the SR approach if the
extra latency is not an issue. ... the number of channels necessary is
intrinsically small because it is simply not productive to have
meetings with large numbers of active speakers."

Each player sources its own channel and subscribes to everyone else's —
the full mesh costs k*n*h FIB entries at worst (§5.1), which this
script prices with the Figure 6 model. The same game over a session
relay is shown for comparison: one channel, but every update pays the
two-leg relay delay.

Run:  python examples/multiplayer_game.py
"""

from repro import ExpressNetwork, TopologyBuilder
from repro.costmodel import FibCostModel
from repro.relay import SessionParticipant, SessionRelay

PLAYERS = ["h0_0_0", "h1_0_0", "h1_1_1", "h2_0_0", "h2_1_0", "h3_0_1"]


def per_source_channels(net):
    """One channel per player; everyone subscribes to everyone."""
    channels = {}
    received = {name: [] for name in PLAYERS}
    for name in PLAYERS:
        channels[name] = net.source(name).allocate_channel()
    for speaker, channel in channels.items():
        for listener in PLAYERS:
            if listener != speaker:
                net.host(listener).subscribe(
                    channel,
                    on_data=lambda pkt, who=listener: received[who].append(pkt.payload),
                )
    net.settle()

    # One round of game-state updates from every player.
    for name in PLAYERS:
        net.source(name).send(channels[name], payload=f"{name}: position update",
                              size=128)
    net.settle()
    return channels, received


def main() -> None:
    topo = TopologyBuilder.isp(n_transit=4, stubs_per_transit=2, hosts_per_stub=2)
    net = ExpressNetwork(topo)
    net.run(until=0.1)

    channels, received = per_source_channels(net)
    complete = sum(1 for name in PLAYERS if len(received[name]) == len(PLAYERS) - 1)
    print(f"{len(PLAYERS)} players, {len(channels)} channels (one per source)")
    print(f"players with all {len(PLAYERS) - 1} updates: {complete}/{len(PLAYERS)}")

    entries = net.fib_entries_total()
    model = FibCostModel()
    print(f"FIB entries for the full mesh: {entries} "
          f"({entries * 12} bytes; "
          f"${model.tree_cost(entries, 3600):.4f} for an hour-long match)")

    # Worst-case direct latency vs the relay alternative.
    direct_worst = max(
        net.routing.distance(a, b) for a in PLAYERS for b in PLAYERS if a != b
    )
    relay_host = "h0_0_0"
    relay_worst = max(
        net.routing.distance(a, relay_host) + net.routing.distance(relay_host, b)
        for a in PLAYERS
        for b in PLAYERS
        if a != b
    )
    print(f"\nworst-case update latency:")
    print(f"  per-source channels: {direct_worst * 1000:.1f} ms (shortest paths)")
    print(f"  via a session relay: {relay_worst * 1000:.1f} ms "
          f"(+{(relay_worst - direct_worst) * 1000:.1f} ms relay penalty)")

    # The SR variant, for completeness: one channel, floor-free relaying.
    relay = SessionRelay(net, relay_host)
    members = [SessionParticipant(net, name, relay) for name in PLAYERS[1:]]
    net.settle()
    members[0].speak("relayed position update", size=128)
    net.settle()
    heard = sum(1 for member in members if member.heard_talks)
    print(f"\nSR variant: 1 channel, update heard by {heard}/{len(members)} members")
    print("-> per-source channels win on latency; the SR wins on channel")
    print("   count — exactly the §4.4 tradeoff, at application control")


if __name__ == "__main__":
    main()
