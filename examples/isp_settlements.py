#!/usr/bin/env python
"""Inter-domain settlements and channel billing (§2.2.3, §3.1, §6).

Two ISP-side uses of ECMP counting, on one large channel:

1. **Billing the source** — the ISP samples the subscriber count every
   few minutes ("perhaps sampling the count every 5 or 10 minutes",
   §6) and prices the channel by audience tier ("differentiating among
   channels with 10s, 100s, 1000s, and millions of subscribers").
2. **Transit settlements** — "the ingress router for transit domain D
   might initiate a query to count the number of links used within D.
   This information could be used to make inter-domain settlements or
   for resource planning" (§3.1). Each transit router initiates its own
   LINK_COUNT query, without source cooperation.

Run:  python examples/isp_settlements.py
"""

from repro import ExpressNetwork, TopologyBuilder
from repro.core.ecmp.countids import LINK_COUNT_ID
from repro.costmodel.billing import BillingCollector, TieredBillingPolicy
from repro.workloads import poisson_churn, schedule_churn


def main() -> None:
    # Four transit domains, each with its own edge infrastructure.
    topo = TopologyBuilder.isp(n_transit=4, stubs_per_transit=3, hosts_per_stub=3)
    net = ExpressNetwork(topo)
    net.run(until=0.1)

    broadcaster = net.source("h0_0_0")
    channel = broadcaster.allocate_channel()
    viewers = [
        f"h{t}_{s}_{k}" for t in (1, 2, 3) for s in range(3) for k in range(3)
    ]

    # An hour of audience churn.
    events = poisson_churn(
        viewers, duration=3600, mean_off_time=900, mean_on_time=1800, seed=3
    )
    schedule_churn(net, channel, events)

    # The ISP's billing collector samples every 10 minutes.
    collector = BillingCollector(broadcaster, channel, interval=600.0)
    collector.start()

    net.run(until=3600)
    collector.stop()

    invoice = collector.invoice()
    print(f"channel {invoice.channel}: {len(events)} churn events over 1h")
    print(f"count samples (every 10 min): {invoice.samples}")
    print(f"average audience {invoice.average_subscribers:.1f}"
          f" (peak {invoice.peak_subscribers}) -> tier '{invoice.tier}'")
    print(f"invoice to the source: ${invoice.amount:.2f} for "
          f"{invoice.duration_hours:.1f} h")

    # Transit settlements: each transit router counts the channel's
    # link usage in its subtree, source not involved.
    print("\nper-transit link usage (router-initiated LINK_COUNT):")
    results = {}
    for transit in ("t1", "t2", "t3"):
        results[transit] = net.router_agent(transit).count_query(
            channel, LINK_COUNT_ID, timeout=5.0
        )
    net.settle(6.0)
    for transit, result in results.items():
        if result.done and result.count:
            print(f"  domain {transit}: {result.count} tree links in use"
                  f" -> settlement basis for transit {transit}")
        else:
            print(f"  domain {transit}: channel not present (no charge)")

    total_links = len(net.tree_edges(channel))
    print(f"\nwhole-tree links right now: {total_links}"
          f" ({net.fib_entries_total()} FIB entries, "
          f"{net.fib_entries_total() * 12} fast-path bytes)")


if __name__ == "__main__":
    main()
