#!/usr/bin/env python
"""Wide-area multicast file distribution with NACK-counted repair.

The paper's abstract lists "wide-area multicast file updates" among the
target applications, and §2.2.1 explains the mechanism: the counting
facility "can be used to efficiently collect positive acknowledgements
or negative acknowledgments to determine how many subscribers missed a
particular packet."

This example pushes a "file" of chunks over a lossy distribution tree
through a :class:`ReliableRelay`, then runs NACK-counted repair rounds
until every receiver holds every chunk — the source never learns *who*
lost what, only *how many*, which is all it needs to decide whether to
re-multicast.

Run:  python examples/file_distribution.py
"""

from repro import ExpressNetwork, TopologyBuilder
from repro.relay import ReliableReceiver, ReliableRelay, SessionParticipant, SessionRelay

N_CHUNKS = 30
CHUNK_BYTES = 1356
LOSS = 0.08


def main() -> None:
    # A 27-leaf tree with lossy last-hop links (8% per packet).
    depth, fanout = 3, 3
    topo = TopologyBuilder.balanced_tree(depth=depth, fanout=fanout)
    topo.add_node("pub")
    topo.add_link("pub", "r", delay=0.001)
    for link in topo.links:
        if link.node_a.name.startswith(f"d{depth}_") or link.node_b.name.startswith(
            f"d{depth}_"
        ):
            link.loss = LOSS
    leaves = [f"d{depth}_{i}" for i in range(fanout**depth)]
    net = ExpressNetwork(topo, hosts=leaves + ["pub"])
    net.run(until=0.1)

    relay = SessionRelay(net, "pub")
    reliable = ReliableRelay(relay)
    receivers = [
        ReliableReceiver(SessionParticipant(net, leaf, relay)) for leaf in leaves
    ]
    net.settle()
    print(f"distributing {N_CHUNKS} chunks x {CHUNK_BYTES} B to "
          f"{len(receivers)} receivers over {LOSS:.0%}-lossy edge links")

    # Blast the file.
    seqs = [reliable.send(f"chunk-{i}", size=CHUNK_BYTES)[0] for i in range(N_CHUNKS)]
    net.settle()
    initially_missing = sum(len(r.missing()) for r in receivers)
    print(f"after first pass: {initially_missing} chunk-copies missing network-wide")

    # Repair rounds: probe each chunk, count NACKs, re-multicast if
    # anyone is missing it. Repeat until a clean round.
    round_number = 0
    while True:
        round_number += 1
        outstanding = []
        for seq in seqs:
            result = reliable.check_packet(seq, timeout=3.0, repair=True)
            outstanding.append(result)
            net.settle(4.0)
        net.settle(2.0)
        nacks = sum(result.count or 0 for result in outstanding)
        missing = sum(len(r.missing()) for r in receivers)
        print(f"repair round {round_number}: {nacks} NACKs counted, "
              f"{reliable.retransmissions} retransmissions so far, "
              f"{missing} copies still missing")
        if missing == 0:
            break
        if round_number >= 10:
            print("giving up (pathological loss)")
            break

    complete = sum(1 for r in receivers if not r.missing())
    total_sent = N_CHUNKS + reliable.retransmissions
    print(f"\ncomplete receivers: {complete}/{len(receivers)}")
    print(f"multicast transmissions: {total_sent} "
          f"(vs {N_CHUNKS * len(receivers)} unicast sends = "
          f"{N_CHUNKS * len(receivers) / total_sent:.1f}x saving)")
    print("the source never tracked per-receiver state — only counts")


if __name__ == "__main__":
    main()
