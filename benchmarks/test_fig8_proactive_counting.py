"""FIG8 — Figure 8: error convergence and bandwidth of proactive
counting.

Replays the paper's scenario — "about 250 subscribers and a 3 minute
duration ... an initial burst of subscriptions at time 0, followed by
slow subscriptions until time 200, a burst of subscriptions at time
200, then no activity until time 300, when all hosts unsubscribe
quickly" — through the live ECMP implementation in PROACTIVE mode,
for α = 4 and α = 2.5 at τ = 120, and reproduces both panels:

* upper: actual vs estimated group size at the source;
* lower: cumulative Count messages delivered to the source.

Expected shape (per the paper): α=4 tracks the actual size closely;
α=2.5 lags after the t=200 burst and uses fewer messages.
"""

import pytest
from conftest import ascii_series, report

from repro.workloads.scenarios import FIG8_TAU, run_fig8


def run_both():
    return {
        alpha: run_fig8(alpha=alpha, sample_interval=10.0, seed=0)
        for alpha in (4.0, 2.5)
    }


def test_fig8_reproduction(benchmark):
    samples = benchmark.pedantic(run_both, rounds=1, iterations=1)

    def max_lag(series, lo, hi):
        return max(
            abs(s.actual - s.estimated) for s in series if lo <= s.time <= hi
        )

    # Upper panel: alpha=4 tracks closely through the slow phase...
    for sample in samples[4.0]:
        if 20 <= sample.time <= 200:
            assert abs(sample.actual - sample.estimated) <= max(0.25 * sample.actual, 5)
    # ...and alpha=2.5 lags at least as much after the burst.
    lag_fast = max_lag(samples[4.0], 220, 300)
    lag_slow = max_lag(samples[2.5], 220, 300)
    assert lag_slow >= lag_fast
    # Both converge to zero after the mass unsubscribe (within tau).
    for alpha in (4.0, 2.5):
        tail = [s for s in samples[alpha] if s.time >= 310 + FIG8_TAU]
        assert tail and all(s.estimated == 0 for s in tail)
    # Lower panel: alpha=2.5 uses no more messages than alpha=4.
    messages = {a: s[-1].counts_delivered_to_source for a, s in samples.items()}
    assert messages[2.5] <= messages[4.0]

    rows = [
        "Figure 8: proactive counting (tau=120), live ECMP run",
        "",
        "  time   actual   est(a=4)   est(a=2.5)   msgs(a=4)   msgs(a=2.5)",
    ]
    by_time = {s.time: s for s in samples[2.5]}
    for s in samples[4.0]:
        if s.time % 20 != 0:
            continue
        other = by_time.get(s.time)
        rows.append(
            f"  {s.time:>5.0f}  {s.actual:>6}  {s.estimated:>9}"
            f"  {other.estimated if other else '-':>11}"
            f"  {s.counts_delivered_to_source:>10}"
            f"  {other.counts_delivered_to_source if other else '-':>12}"
        )
    rows += [
        "",
        f"  total Counts at source: a=4.0: {messages[4.0]}, a=2.5: {messages[2.5]}"
        f"  (ratio {messages[2.5] / messages[4.0]:.2f}; paper: ~2/3)",
        f"  max |actual-est| in (220,300): a=4.0: {lag_fast}, a=2.5: {lag_slow}",
        "  shape: a=4 tracks closely; a=2.5 lags after the burst and",
        "  spends less bandwidth — matching the published panels.",
        "",
    ]
    window = [s for s in samples[4.0] if s.time <= 360]
    window_25 = [s for s in samples[2.5] if s.time <= 360]
    rows += ascii_series(
        "  upper panel: group size over time",
        {
            "actual": [(s.time, s.actual) for s in window],
            "4 (est, a=4)": [(s.time, s.estimated) for s in window],
            "2.5 (est)": [(s.time, s.estimated) for s in window_25],
        },
    )
    rows.append("")
    rows += ascii_series(
        "  lower panel: cumulative Counts delivered to the source",
        {
            "4 (a=4.0)": [
                (s.time, s.counts_delivered_to_source) for s in window
            ],
            "2 (a=2.5)": [
                (s.time, s.counts_delivered_to_source) for s in window_25
            ],
        },
    )
    report("fig8_proactive_counting", rows)


def test_fig8_depth_scaling(benchmark):
    """§6: "the convergence time of the algorithm grows approximately
    linearly with the depth of the tree"."""
    def convergence_time(depth, fanout):
        samples = run_fig8(
            alpha=4.0, sample_interval=5.0, seed=0, depth=depth, fanout=fanout
        )
        # Time after the t=200 burst until the estimate is within 5%.
        for s in samples:
            if s.time > 205 and abs(s.actual - s.estimated) <= 0.05 * max(s.actual, 1):
                return s.time - 200.0
        return float("inf")

    shallow = convergence_time(depth=2, fanout=16)
    deep = convergence_time(depth=4, fanout=4)
    benchmark.pedantic(
        lambda: run_fig8(alpha=4.0, sample_interval=50.0, seed=1),
        rounds=1,
        iterations=1,
    )

    assert shallow <= deep  # deeper tree converges no faster

    report(
        "fig8_depth_scaling",
        [
            "§6: convergence time vs tree depth (post-burst, to within 5%)",
            f"  depth 2 (fanout 16): {shallow:6.1f} s",
            f"  depth 4 (fanout 4):  {deep:6.1f} s",
            "  -> grows with depth, as the paper notes; depth itself grows",
            "     only logarithmically with group size",
        ],
    )
