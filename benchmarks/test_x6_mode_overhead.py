"""X6 — ablation: TCP-mode vs UDP-mode control overhead (§3.2, §5.3).

"With TCP operation, a periodic refresh of each long-lived channel is
unnecessary — a single per-neighbor keepalive is sufficient ... This
aspect allows the TCP-based protocol to efficiently support very large
numbers of channels, as only one message is required to initiate
subscription and one to end it, and per-channel timers are eliminated."

Measured: steady-state control messages over a long idle window as the
number of long-lived channels grows, in TCP mode (keepalive-only) vs
UDP mode (per-channel refresh responses to periodic general queries).
The paper's claim is the scaling shape: TCP-mode idle traffic is O(1)
in channels, UDP-mode is O(channels).
"""

import pytest
from conftest import report

from repro import ExpressNetwork, NeighborMode, TopologyBuilder

IDLE_WINDOW = 300.0


def idle_control_messages(n_channels, edge_udp):
    topo = TopologyBuilder.star(2)  # hub + source host + subscriber host
    net = ExpressNetwork(topo, hosts=["leaf0", "leaf1"], edge_udp=edge_udp)
    net.run(until=0.01)
    source = net.source("leaf0")
    for _ in range(n_channels):
        channel = source.allocate_channel()
        net.host("leaf1").subscribe(channel)
    net.settle()
    before = net.control_stats_total()
    net.run(until=net.sim.now + IDLE_WINDOW)
    after = net.control_stats_total()
    return after.get("msgs_tx", 0) - before.get("msgs_tx", 0)


def test_x6_tcp_vs_udp_idle_overhead(benchmark):
    results = {}
    for n_channels in (10, 40, 160):
        results[n_channels] = {
            "tcp": idle_control_messages(n_channels, edge_udp=False),
            "udp": idle_control_messages(n_channels, edge_udp=True),
        }
    benchmark.pedantic(
        lambda: idle_control_messages(10, edge_udp=False), rounds=1, iterations=1
    )

    # TCP-mode idle traffic is flat in channel count...
    tcp_10, tcp_160 = results[10]["tcp"], results[160]["tcp"]
    assert tcp_160 <= tcp_10 * 1.5
    # ...UDP-mode grows with channels (per-channel refresh Counts)...
    udp_10, udp_160 = results[10]["udp"], results[160]["udp"]
    assert udp_160 > 4 * udp_10
    # ...and at scale UDP costs far more than TCP.
    assert udp_160 > 5 * tcp_160

    rows = [
        f"X6: idle-window ({IDLE_WINDOW:.0f}s) control messages vs channel count",
        "",
        "  channels    TCP mode (keepalive)    UDP mode (refresh)",
    ]
    for n_channels, modes in results.items():
        rows.append(
            f"  {n_channels:>8}    {modes['tcp']:>20,}    {modes['udp']:>18,}"
        )
    rows += [
        "",
        "  -> TCP mode: O(1) in channels (one keepalive per neighbor);",
        "     UDP mode: O(channels) (every channel re-reported each",
        "     query interval) — the §3.2/§5.3 split: TCP for the many-",
        "     channel core, UDP for the many-host edge",
    ]
    report("x6_mode_overhead", rows)
