"""T4 — §5.3 measured: ECMP event-processing throughput.

The paper's setup: "the router had eight active Ethernet neighbors
continuously sending subscribe and unsubscribe events. The core router
processed approximately 4,500 incoming events per second ... using four
percent of the CPU on a 400 megahertz Pentium-II ... In another run, a
sustained rate of 33,000 events per second was reached using 43% of the
CPU ... approximately 5,000 cycles per event."

We drive one router's ECMP agent with the same alternating
subscribe/unsubscribe workload from 8 neighbors and measure events/s.
Absolute numbers reflect the Python substrate, not 1999 C on a P-II;
the claims under test are the *shapes*: per-event cost is flat as the
channel count grows (state is hash-indexed), and total state grows
linearly in channels.
"""

import time

import pytest
from conftest import report

from repro import ExpressNetwork, TopologyBuilder
from repro.core.ecmp.protocol import PROTO_ECMP
from repro.costmodel.maintenance import MaintenanceModel
from repro.netsim.packet import Packet
from repro.workloads.churn import count_message_stream

N_NEIGHBORS = 8


def build_router_under_test(source_suffix_host="s"):
    """hub router with 8 downstream neighbors and one upstream toward
    the channels' source host."""
    from repro.netsim.topology import Topology

    topo = Topology()
    topo.add_node("hub")
    topo.add_node("up")
    topo.add_node("s")
    topo.add_link("up", "hub", delay=0.0001)
    topo.add_link("s", "up", delay=0.0001)
    edges = []
    for i in range(N_NEIGHBORS):
        name = f"e{i}"
        topo.add_node(name)
        topo.add_link("hub", name, delay=0.0001)
        edges.append(name)
    net = ExpressNetwork(topo, hosts=["s"] + edges)
    net.run(until=0.01)
    return net, edges


def make_event_packets(net, edges, n_channels, n_events, seed=0):
    """Pre-build (packet, ifindex) pairs so measurement excludes
    workload generation."""
    hub = net.topo.node("hub")
    source_address = net.topo.node("s").address
    ifindex = {
        name: hub.interface_to(net.topo.node(name)).index for name in edges
    }
    events = []
    for message, neighbor in count_message_stream(
        n_channels, edges, n_events, source_address=source_address, seed=seed
    ):
        packet = Packet(
            src=net.topo.node(neighbor).address,
            dst=hub.address,
            proto=PROTO_ECMP,
            size=36,
        )
        packet.headers["ecmp"] = message
        packet.headers["reliable"] = True
        events.append((packet, ifindex[neighbor]))
    return events


def run_events(net, events):
    agent = net.ecmp_agents["hub"]
    handle = agent.handle_packet
    start = time.perf_counter()
    for packet, ifindex in events:
        handle(packet, ifindex)
    elapsed = time.perf_counter() - start
    net.run(until=net.sim.now + 5)  # drain upstream deliveries
    return elapsed


def test_t4_event_throughput(benchmark):
    net, edges = build_router_under_test()
    events = make_event_packets(net, edges, n_channels=1000, n_events=20_000)

    elapsed = benchmark.pedantic(
        lambda: run_events(net, events), rounds=1, iterations=1
    )
    rate = len(events) / elapsed
    agent = net.ecmp_agents["hub"]
    processed = agent.stats.get("subscribe_events") + agent.stats.get(
        "unsubscribe_events"
    )

    assert processed == len(events)
    assert rate > 1_000  # sanity floor for the Python substrate

    model = MaintenanceModel()
    report(
        "t4_event_throughput",
        [
            "§5.3 measured: subscribe/unsubscribe event processing",
            "  workload: 8 neighbors, alternating join/leave, 1000 channels",
            f"  events processed:      {processed:,}",
            f"  sustained rate:        {rate:,.0f} events/s (Python substrate)",
            "  paper (C, 400MHz P-II): 4,500/s @ 4% CPU; 33,000/s @ 43% CPU",
            f"  paper cycles/event:    ~5,000 "
            f"(=> {model.max_event_rate(1.0):,.0f}/s at 100% of that CPU)",
            "  claim under test: cost per event is flat; see scaling bench",
        ],
    )


def test_t4_per_event_cost_flat_in_channels(benchmark):
    """More channels must not make each event slower (hash-indexed
    state) — the paper's implicit scalability claim."""
    rates = {}
    for n_channels in (100, 1_000, 10_000):
        net, edges = build_router_under_test()
        events = make_event_packets(net, edges, n_channels, 10_000, seed=3)
        elapsed = run_events(net, events)
        rates[n_channels] = len(events) / elapsed

    # Re-run the middle point under the benchmark fixture for timing.
    net, edges = build_router_under_test()
    events = make_event_packets(net, edges, 1_000, 2_000, seed=4)
    benchmark.pedantic(lambda: run_events(net, events), rounds=1, iterations=1)

    slowest, fastest = min(rates.values()), max(rates.values())
    assert slowest > 0.4 * fastest  # flat within interpreter noise

    report(
        "t4_scaling",
        [
            "§5.3: per-event cost vs number of channels (10k events each)",
            *[
                f"  {n:>7,} channels: {rate:>10,.0f} events/s"
                for n, rate in rates.items()
            ],
            f"  max/min ratio: {fastest / slowest:.2f}x (flat -> state lookup is O(1))",
        ],
    )


def test_t4_state_linear_in_channels(benchmark):
    """"memory ... scales linearly with the number of channels" (§5)."""
    def state_for(n_channels):
        net, edges = build_router_under_test()
        events = make_event_packets(net, edges, n_channels, 4 * n_channels, seed=5)
        # Play joins only (every first touch of a (channel, neighbor)).
        run_events(net, events)
        agent = net.ecmp_agents["hub"]
        return len(agent.channels), net.fibs["hub"].memory_bytes()

    results = {n: state_for(n) for n in (200, 400, 800)}
    benchmark.pedantic(lambda: state_for(100), rounds=1, iterations=1)

    channels_200 = results[200][0]
    channels_800 = results[800][0]
    assert channels_800 == pytest.approx(4 * channels_200, rel=0.1)

    report(
        "t4_state_linear",
        [
            "§5: router state vs channel count (after churn workload)",
            *[
                f"  {n:>5,} channels offered -> {c:,} channel states,"
                f" {fib:,} FIB bytes"
                for n, (c, fib) in results.items()
            ],
            "  -> linear, as the paper argues",
        ],
    )
