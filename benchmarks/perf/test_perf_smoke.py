"""Perf harness smoke benchmark.

Runs ``repro.bench`` in quick mode, writes the repo-root
``BENCH_perf.json`` trajectory file, and asserts the two structural
claims of the fast-path PR:

* the churn scenario runs >=5x fewer Dijkstra destination-tree
  computations than the seed's full ``recompute()`` would have
  (``recompute_count x |V|``),
* the churn scenario's batched TCP-mode send path puts >=3x fewer
  control packets on the wire than the unbatched baseline run of the
  identical workload, with live ``ecmp_bytes_on_wire`` accounting,
* the mega join storm (100k aggregated subscribers in quick mode)
  dispatches identical event counts under both schedulers, keeps exact
  membership/delivery arithmetic, and the timer wheel beats the heap
  by the CI floor (2.5x — a noise-safe regression gate; the recorded
  medians are >=3x),
* the native event core is actually engaged on the wheel run: whole
  pure slots batch-dispatch (no per-event materialization) and events
  recycle through the arena,
* the channel-surf scenario's fast control plane (columnar state,
  zero-copy codec, refresh ring) beats the legacy dict/scan baseline
  on the identical Zipf zapping workload by the CI floor (2x — the
  recorded medians are >=3x), with both control planes settling to
  identical state, and
* every scenario clears a generous events/sec floor (guards against
  catastrophic data-plane regressions without tying CI to hardware).

Run with ``pytest benchmarks/perf`` or via ``python -m repro.bench``.
"""

import json
import pathlib

from repro.bench import build_report, write_report

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

#: Deliberately generous: CI runners are slow and shared. The real
#: throughput trajectory lives in BENCH_perf.json diffs, not here.
EVENTS_PER_SEC_FLOOR = 500.0
DIJKSTRA_RATIO_FLOOR = 5.0
WIRE_REDUCTION_FLOOR = 3.0
#: Below the ~3.1-3.3x recorded medians on purpose: heap and wheel run
#: back-to-back in one noisy shared container, so this is a regression
#: gate, not the headline number (that lives in BENCH_perf.json).
WHEEL_SPEEDUP_FLOOR = 2.5
#: Below the ~4-5x recorded medians for the same reason: the fast and
#: legacy control planes run back-to-back in one shared container.
STATE_CHURN_SPEEDUP_FLOOR = 2.0


def test_perf_smoke_writes_bench_json():
    report = build_report(quick=True)
    out = REPO_ROOT / "BENCH_perf.json"
    write_report(report, out)

    parsed = json.loads(out.read_text())
    assert parsed["bench"] == "perf"
    assert parsed["schema_version"] == 8
    assert set(parsed["scenarios"]) == {
        "join_storm",
        "link_flap_churn",
        "steady_fanout",
        "mega_join_storm",
        "channel_surf",
        "mega_join_storm_parallel",
    }

    for name, metrics in parsed["scenarios"].items():
        assert metrics["events_per_sec"] > EVENTS_PER_SEC_FLOOR, name
        assert metrics["sim_events"] > 0, name

    churn = parsed["scenarios"]["link_flap_churn"]
    assert churn["dijkstra_savings_ratio"] >= DIJKSTRA_RATIO_FLOOR
    assert churn["dijkstra_runs"] < churn["dijkstra_baseline_equivalent"]
    assert churn["spf"]["partial_invalidations"] > 0

    # Batched ECMP wire encoding: the identical workload driven with
    # batching off must cost >=3x more wire packets, and the on-wire
    # accounting must be live end to end (agent stats, link counters,
    # the summary block).
    wire = churn["ecmp_wire"]
    unbatched = churn["ecmp_wire_unbatched"]
    assert churn["wire_message_reduction"] >= WIRE_REDUCTION_FLOOR
    assert unbatched["ecmp_wire_sends"] >= (
        WIRE_REDUCTION_FLOOR * wire["ecmp_wire_sends"]
    )
    assert wire["ecmp_bytes_on_wire"] > 0
    assert wire["ecmp_bytes_on_wire"] < unbatched["ecmp_bytes_on_wire"]
    assert wire["ecmp_msgs_coalesced"] > 0
    assert wire["ecmp_batch_flushes"] > 0
    # Link-level accounting sees the agents' wire traffic (a send can
    # hit a link mid-failure, so links may see slightly fewer packets).
    assert 0 < wire["link_ecmp_wire_packets"] <= wire["ecmp_wire_sends"]
    assert 0 < wire["link_ecmp_wire_bytes"] <= wire["ecmp_bytes_on_wire"]
    # The unbatched baseline never coalesces: one wire send per message.
    assert unbatched["ecmp_msgs_coalesced"] == 0
    assert unbatched["ecmp_wire_sends"] == unbatched["ecmp_msgs_logical"]
    assert parsed["summary"]["ecmp_bytes_on_wire"] == wire["ecmp_bytes_on_wire"]
    assert parsed["summary"]["wire_message_reduction"] == churn[
        "wire_message_reduction"
    ]

    fanout = parsed["scenarios"]["steady_fanout"]
    assert fanout["packets_delivered"] > 0
    # Every interior node of a fanout-2 tree is a branch point: one
    # copy plus one in-place send -> exactly half the transmissions
    # avoid a packet allocation.
    assert fanout["inplace_fraction"] >= 0.5
    assert fanout["fib_cache_hit_fraction"] > 0.5

    # Million-subscriber scale (100k in quick mode) through aggregated
    # edge-subscriber blocks, identical workload per scheduler.
    mega = parsed["scenarios"]["mega_join_storm"]
    assert mega["params"]["subscribers"] == 100_000
    # Correctness before speed: both schedulers dispatched the same
    # event count, and the aggregated counting stayed exact.
    assert mega["dispatch_events_match"] is True
    assert mega["members_final"] == mega["members_expected"]
    assert mega["block_deliveries"] == mega["deliveries_expected"]
    assert mega["fib_no_match_drops"] == 0
    assert mega["block_fast_updates"] > 0
    assert mega["wheel_speedup"] >= WHEEL_SPEEDUP_FLOOR
    assert mega["peak_rss_kb"] > 0
    wheel_stats = mega["schedulers"]["wheel"]["scheduler_stats"]
    assert wheel_stats["scheduler"] == "wheel"
    # The wheel must actually be doing bucketed O(1) inserts, not
    # degrading into the sorted open-slot path.
    assert wheel_stats["wheel_insert_share"] > 0.9
    assert mega["schedulers"]["heap"]["scheduler_stats"]["scheduler"] == "heap"
    # v6 native core: the wheel run must batch-dispatch whole pure
    # slots (not fall back to per-event materialization) and recycle
    # events through the arena, unless the escape hatch is pulled.
    assert mega["native_core"] is True
    assert mega["batched_slots"] > 0
    assert mega["batched_events"] > 0
    assert mega["arena"] is not None
    assert mega["arena"]["cap"] > 0
    assert parsed["summary"]["native_core"] is True
    assert parsed["summary"]["batched_events"] == mega["batched_events"]
    assert parsed["summary"]["wheel_speedup"] == mega["wheel_speedup"]
    assert parsed["summary"]["mega_events_per_sec"] == mega["events_per_sec"]

    # v8 control-plane fast path: the identical Zipf zapping workload
    # driven on both control planes must settle to identical state
    # (the scenario raises otherwise), the fast path must beat the
    # legacy dict/scan baseline by the floor, and the refresh ring
    # must eliminate the bulk of the per-tick record examinations.
    surf = parsed["scenarios"]["channel_surf"]
    assert surf["states_equivalent"] is True
    assert surf["zap_events"] > 0
    assert surf["zap_events_per_sec"] > 0
    assert surf["state_churn_speedup"] >= STATE_CHURN_SPEEDUP_FLOOR
    assert 0.0 < surf["refresh_scan_fraction"] < 0.5
    assert surf["refresh_records_examined"] > 0
    assert surf["baseline"]["refresh_records_examined"] > (
        surf["refresh_records_examined"]
    )
    assert surf["ecmp_wire"]["ecmp_bytes_on_wire"] > 0
    assert parsed["summary"]["zap_events_per_sec"] == surf["zap_events_per_sec"]
    assert parsed["summary"]["state_churn_speedup"] == surf[
        "state_churn_speedup"
    ]
    assert parsed["summary"]["refresh_scan_fraction"] == surf[
        "refresh_scan_fraction"
    ]

    storm = parsed["scenarios"]["join_storm"]
    assert storm["subscribed"] == storm["params"]["subscribers"]
    # The ISP topology mixes branch points (transit fan-out, stubs with
    # two subscribed hosts) with degree-1 chain hops; every fan-out's
    # final interface goes zero-copy, so a solid fraction of all
    # transmissions must avoid an allocation.
    assert storm["inplace_fraction"] > 0.25
    assert storm["delivery_latency"]["count"] > 0
    assert (
        storm["delivery_latency"]["p99_seconds"]
        >= storm["delivery_latency"]["p50_seconds"]
    )

    # Sharded mega storm: correctness is asserted unconditionally (the
    # scenario itself raises if the merged sharded state diverges from
    # the single-process run); the >=1.5x partition-speedup gate lives
    # in CI's parallel-smoke job, not here, because this file also runs
    # on single-core dev boxes where two workers cannot beat one.
    parallel = parsed["scenarios"]["mega_join_storm_parallel"]
    assert parallel["equivalent_to_single_process"] is True
    assert parallel["members_final"] == parallel["members_expected"]
    assert parallel["block_deliveries"] == parallel["deliveries_expected"]
    assert parallel["partition_plan"]["partitions"] == parallel["params"]["workers"]
    assert parallel["partition_plan"]["min_lookahead"] > 0
    assert parallel["sync_rounds"] > 0
    assert parallel["sync"]["proxy_packets"] > 0
    assert parallel["single_process"]["sim_events"] == parallel["sim_events"]
    assert parsed["summary"]["partition_speedup"] == parallel["partition_speedup"]
    assert parsed["summary"]["partition_workers"] == parallel["params"]["workers"]

    # v5 distributed telemetry: the telemetered pass must account for
    # ~all worker wall time, cover every shard in the merged scrape,
    # and stitch at least one trace across a shard boundary (the
    # scenario raises on any of these failing; re-asserted here so the
    # JSON contract is pinned too).
    breakdown = parallel["phase_breakdown"]
    assert set(breakdown) == {
        "dispatch",
        "cascade",
        "alloc",
        "accounting",
        "sync_wait",
        "idle",
    }
    assert abs(sum(breakdown.values()) - 1.0) < 0.01
    # v6 host diagnostics: spawn/warmup cost and core count are surfaced
    # so a sub-1x partition_speedup on a starved host reads as a host
    # limitation (warnings) instead of a silent regression.
    assert parallel["setup_seconds"] >= 0.0
    assert parallel["cores_available"] >= 1
    assert isinstance(parallel["warnings"], list)
    assert parsed["summary"]["parallel_warnings"] == parallel["warnings"]
    assert 0.0 <= parallel["null_message_ratio"]
    assert 0.0 < parallel["sync_efficiency"] <= 1.0
    assert parallel["settle_seconds"] >= 0.0
    telemetry = parallel["telemetry"]
    assert telemetry["shards_in_scrape"] == [
        str(rank) for rank in range(parallel["params"]["workers"])
    ]
    assert telemetry["shard_series"] > 0
    assert telemetry["cross_shard_traces"] >= 1
    assert telemetry["snapshots_ingested"] >= parallel["params"]["workers"]
    assert len(telemetry["events_per_second"]) == parallel["params"]["workers"]
    assert parsed["summary"]["sync_efficiency"] == parallel["sync_efficiency"]
    assert parsed["summary"]["null_message_ratio"] == parallel["null_message_ratio"]
    assert parsed["summary"]["settle_seconds"] == parallel["settle_seconds"]
