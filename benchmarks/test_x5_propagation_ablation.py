"""X5 — ablation: count-propagation policy (TREE_ONLY vs ON_CHANGE vs
PROACTIVE).

DESIGN.md calls out the propagation policy as the central design knob
behind §6: TREE_ONLY (the base protocol) keeps the control plane quiet
but the source knows nothing between polls; ON_CHANGE gives the source
an always-exact count at the cost of one upstream message per
membership change; PROACTIVE (§6) buys a tunable point in between.

Measured: control messages network-wide and at the source, plus the
source's count error, under the same churn workload.
"""

import pytest
from conftest import report

from repro import CountPropagation, ExpressNetwork, ToleranceCurve, TopologyBuilder
from repro.workloads import poisson_churn, schedule_churn

DEPTH, FANOUT = 3, 4
DURATION = 600.0


def run_policy(propagation):
    topo = TopologyBuilder.balanced_tree(depth=DEPTH, fanout=FANOUT)
    topo.add_node("src")
    topo.add_link("src", "r", delay=0.001)
    leaves = [f"d{DEPTH}_{i}" for i in range(FANOUT**DEPTH)]
    net = ExpressNetwork(
        topo,
        hosts=leaves + ["src"],
        propagation=propagation,
        proactive_curve=ToleranceCurve(e_max=1.0, alpha=4.0, tau=60.0),
    )
    net.run(until=0.01)
    source = net.source("src")
    channel = source.allocate_channel()
    events = poisson_churn(
        leaves, duration=DURATION, mean_off_time=200, mean_on_time=300, seed=11
    )
    schedule_churn(net, channel, events)
    net.run(until=DURATION + 5)

    actual = len(net.subscriber_hosts(channel))
    estimate = net.ecmp_agents["src"].subscriber_count_estimate(channel)
    totals = net.control_stats_total()
    return {
        "events": len(events),
        "counts_tx": totals.get("tx_count", 0),
        "counts_at_source": net.ecmp_agents["src"].stats.get("counts_rx"),
        "actual": actual,
        "estimate": estimate,
        "error": abs(actual - estimate),
    }


def test_x5_propagation_ablation(benchmark):
    results = {
        policy.value: run_policy(policy)
        for policy in (
            CountPropagation.TREE_ONLY,
            CountPropagation.ON_CHANGE,
            CountPropagation.PROACTIVE,
        )
    }
    benchmark.pedantic(
        lambda: run_policy(CountPropagation.TREE_ONLY), rounds=1, iterations=1
    )

    tree_only = results["tree-only"]
    on_change = results["on-change"]
    proactive = results["proactive"]

    # ON_CHANGE is exact at the source but pays the most messages;
    # PROACTIVE sits between on messages with bounded error;
    # TREE_ONLY is the quietest (keepalives aside) and least accurate.
    assert on_change["error"] == 0
    assert on_change["counts_tx"] >= proactive["counts_tx"] >= tree_only["counts_tx"]
    assert on_change["counts_at_source"] >= proactive["counts_at_source"]

    rows = [
        "X5: propagation policy under identical churn",
        f"    (64-leaf fanout-4 tree, {tree_only['events']} join/leave events, 10 min)",
        "",
        "  policy      counts-tx(all)  counts@source  source-count error",
    ]
    for name in ("tree-only", "on-change", "proactive"):
        r = results[name]
        rows.append(
            f"  {name:<10} {r['counts_tx']:>14,}  {r['counts_at_source']:>13,}"
            f"  {r['error']:>6}  (actual {r['actual']}, est {r['estimate']})"
        )
    rows += [
        "",
        "  -> ON_CHANGE: exact but chattiest; TREE_ONLY: quiet, source",
        "     blind between polls; PROACTIVE (§6): tunable middle ground",
    ]
    report("x5_propagation_ablation", rows)
