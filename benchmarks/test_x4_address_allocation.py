"""X4 — address allocation: EXPRESS local channels vs the group model.

The paper's fourth problem (§1): the group model needs world-wide
unique class-D addresses from a shared 2^28 pool, requiring a global
allocation mechanism "with all its deployment and operational issues";
EXPRESS gives every host 2^24 channels it allocates locally with no
coordination (§2.2.1).

Measured: allocation latency/round trips and collision behaviour for
(a) EXPRESS local allocation, (b) a coordinated global authority, and
(c) uncoordinated random self-assignment at world scale.
"""

import pytest
from conftest import report

from repro.core.channel import ChannelAllocator
from repro.inet.addr import CHANNELS_PER_SOURCE, parse_address
from repro.inet.alloc import (
    GROUP_POOL_SIZE,
    CoordinatedAllocator,
    UncoordinatedAllocator,
    collision_probability,
)

N_SESSIONS = 10_000


def test_x4_allocation_comparison(benchmark):
    express = ChannelAllocator(parse_address("10.0.0.1"))

    def allocate_express():
        channels = [express.allocate() for _ in range(N_SESSIONS)]
        for channel in channels:
            express.release(channel)
        return channels

    benchmark(allocate_express)

    coordinated = CoordinatedAllocator(service_rtt=0.2)
    for _ in range(N_SESSIONS):
        coordinated.allocate()

    uncoordinated = UncoordinatedAllocator(seed=1)
    for _ in range(N_SESSIONS):
        uncoordinated.allocate()

    # Shape claims.
    assert coordinated.stats.round_trips == N_SESSIONS
    assert coordinated.total_latency() == pytest.approx(N_SESSIONS * 0.2)
    assert collision_probability(100_000) > 0.99  # world-scale birthday bound
    assert CHANNELS_PER_SOURCE == 2**24  # per host, vs 2^28 - 2^24 world-wide

    report(
        "x4_address_allocation",
        [
            f"X4: allocating {N_SESSIONS:,} multicast sessions",
            "",
            "  scheme                 pool              round-trips   collisions",
            f"  EXPRESS (per-host)     2^24 per host     {0:>11,}   impossible",
            f"  coordinated global     {GROUP_POOL_SIZE:,} shared   {coordinated.stats.round_trips:>11,}"
            f"   0 (authority serializes)",
            f"  uncoordinated random   {GROUP_POOL_SIZE:,} shared   {0:>11,}"
            f"   {uncoordinated.stats.collisions} at 10k; "
            f"P(any)={collision_probability(N_SESSIONS):.3f}",
            "",
            f"  coordination cost at 200ms/RTT: {coordinated.total_latency():,.0f} s"
            f" of cumulative allocation latency",
            f"  world-scale (100k concurrent sessions) uncoordinated collision",
            f"  probability: {collision_probability(100_000):.4f} -> 'extraneous",
            "  cross traffic' is near-certain without a global service (§1)",
            "  EXPRESS: zero round trips, zero collisions, by construction",
        ],
    )
