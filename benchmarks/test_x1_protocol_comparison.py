"""X1 — protocol comparison: EXPRESS vs PIM-SM vs CBT vs DVMRP.

The paper's §3.6 claims, measured on one topology and group:

* "with EXPRESS channels, multicast traffic only travels along paths
  from the source to the subscribers. In contrast, with group multicast
  protocols, packets can traverse routes that are distant from the
  expected direct path ... either detouring via the rendezvous point or
  broadcasting throughout a domain."
* EXPRESS needs no rendezvous/core state, and flood-and-prune leaves
  state on every router.
* §4.4: PIM-SM's shared-tree/SPT choice is the same delay-state
  tradeoff EXPRESS exposes at the application layer.
"""

import pytest
from conftest import report

from repro import ExpressNetwork, TopologyBuilder
from repro.routing.baselines import CbtModel, DvmrpModel, ExpressTreeModel, PimSmModel
from repro.routing.unicast import UnicastRouting

SOURCE = "h0_0_0"
MEMBERS = ["h1_0_0", "h1_1_1", "h2_0_0", "h2_1_0", "h3_1_1", "h0_1_0"]
RP = "t2"  # network-selected rendezvous/core, far from the source


def build():
    topo = TopologyBuilder.isp(n_transit=4, stubs_per_transit=2, hosts_per_stub=2)
    routing = UnicastRouting(topo)
    models = {
        "express": ExpressTreeModel(topo, routing, source=SOURCE),
        "pim-sm (shared)": PimSmModel(topo, routing, rp=RP),
        "pim-sm (spt)": PimSmModel(topo, routing, rp=RP),
        "cbt": CbtModel(topo, routing, core=RP),
        "dvmrp": DvmrpModel(topo, routing, source=SOURCE),
    }
    for name, model in models.items():
        for member in MEMBERS:
            model.join(member)
    for member in MEMBERS:
        models["pim-sm (spt)"].switch_to_spt(member, SOURCE)
    return topo, routing, models


def mean_stretch(model):
    return sum(model.stretch(SOURCE, member) for member in MEMBERS) / len(MEMBERS)


def test_x1_state_and_stretch(benchmark):
    topo, routing, models = benchmark.pedantic(build, rounds=1, iterations=1)

    stats = {
        name: (model.total_state(), len(model.routers_touched()), mean_stretch(model))
        for name, model in models.items()
    }

    express_state, express_touched, express_stretch = stats["express"]
    # EXPRESS: stretch exactly 1 (source shortest paths).
    assert express_stretch == 1.0
    # Shared trees detour; the RP shared tree has strictly worse stretch.
    assert stats["pim-sm (shared)"][2] > 1.0
    # SPT switchover restores stretch 1 but costs extra state.
    assert stats["pim-sm (spt)"][2] == 1.0
    assert stats["pim-sm (spt)"][0] > stats["pim-sm (shared)"][0]
    # DVMRP touches every router in the domain; EXPRESS does not.
    assert stats["dvmrp"][1] == len(topo.nodes)
    assert express_touched < stats["dvmrp"][1]
    # EXPRESS per-group state is no worse than PIM-SM with SPTs.
    assert express_state <= stats["pim-sm (spt)"][0]

    rows = [
        "X1: one group, one source, 6 members on a 4-transit ISP topology",
        f"    source={SOURCE}, RP/core={RP}",
        "",
        "  protocol          state   routers-touched   mean-stretch",
    ]
    for name, (state, touched, stretch) in stats.items():
        rows.append(f"  {name:<16} {state:>6}   {touched:>15}   {stretch:>12.2f}")
    rows += [
        "",
        "  shape checks (all hold):",
        "   - EXPRESS stretch = 1.0; shared trees detour via the RP/core",
        "   - PIM-SM SPT switchover buys stretch 1.0 with extra (S,G) state",
        "   - DVMRP touches the whole domain; EXPRESS only the tree",
    ]
    report("x1_protocol_comparison", rows)


def test_x1_live_express_matches_model(benchmark):
    """The live ECMP implementation builds the same tree the analytic
    EXPRESS model predicts (so X1's model numbers describe the real
    protocol)."""
    topo = TopologyBuilder.isp(n_transit=4, stubs_per_transit=2, hosts_per_stub=2)
    net = ExpressNetwork(topo)
    net.run(until=0.1)
    source = net.source(SOURCE)
    channel = source.allocate_channel()

    def subscribe_all():
        for member in MEMBERS:
            net.host(member).subscribe(channel)
        net.settle()
        return net.tree_edges(channel)

    live_edges = benchmark.pedantic(subscribe_all, rounds=1, iterations=1)
    model = ExpressTreeModel(net.topo, net.routing, source=SOURCE)
    for member in MEMBERS:
        model.join(member)

    assert {frozenset(edge) for edge in live_edges} == model.tree_edges()
    report(
        "x1_live_vs_model",
        [
            "X1 cross-check: live ECMP tree == analytic reverse-SPT model",
            f"  members: {len(MEMBERS)}, tree edges: {len(live_edges)} (identical sets)",
        ],
    )


def test_x1_off_path_traffic(benchmark):
    """Count data-plane transmissions per delivered packet: EXPRESS
    never sends a byte off the source->subscriber paths."""
    topo = TopologyBuilder.isp(n_transit=4, stubs_per_transit=2, hosts_per_stub=2)
    net = ExpressNetwork(topo)
    net.run(until=0.1)
    source = net.source(SOURCE)
    channel = source.allocate_channel()
    for member in MEMBERS:
        net.host(member).subscribe(channel)
    net.settle()

    def send_one():
        source.send(channel)
        net.settle()

    benchmark.pedantic(send_one, rounds=1, iterations=1)
    transmissions = sum(
        fwd.stats.get("multicast_forwarded") for fwd in net.forwarders.values()
    )  # includes the source's own emission (emit_local fans out too)
    tree_links = len(net.tree_edges(channel))

    assert transmissions == tree_links  # one transmission per tree link

    report(
        "x1_off_path_traffic",
        [
            "X1: data transmissions per multicast send",
            f"  tree links:           {tree_links}",
            f"  link transmissions:   {transmissions}",
            "  -> exactly one per tree link; zero off-path traffic",
            "  (DVMRP's first packet would traverse every link in the domain;",
            f"   this topology has {len(net.topo.links)} links)",
        ],
    )
