"""X8 — live delivery latency: EXPRESS vs running PIM-SM / CBT stacks.

X1 compares the protocols analytically (hop stretch); this benchmark
measures *actual packet arrival times* on the live implementations —
the §3.6 claim that "with EXPRESS channels, multicast traffic only
travels along paths from the source to the subscribers" becomes a
wall-clock number, and PIM's shared-tree/SPT choice (§4.4) becomes a
measured latency/state tradeoff.

Arrival times come from the shared observability registry: both stacks
record into the same ``delivery_latency_seconds{protocol,node,channel}``
histogram family, so the comparison is read back from the metrics layer
rather than hand-rolled callbacks.
"""

import pytest
from conftest import report

from repro import ExpressNetwork, TopologyBuilder
from repro.groupmodel import GroupNetwork
from repro.inet.addr import parse_address
from repro.obs import Observability

GROUP = parse_address("224.88.0.1")
SOURCE = "h0_0_0"
MEMBERS = ["h1_0_0", "h1_1_1", "h2_0_0", "h3_1_0"]
RP = "t2"


def build_topo():
    return TopologyBuilder.isp(n_transit=4, stubs_per_transit=2, hosts_per_stub=2)


def registry_latencies(obs):
    """{node: first-delivery latency} from delivery_latency_seconds."""
    family = obs.registry.get("delivery_latency_seconds")
    if family is None:
        return {}
    node_index = family.labelnames.index("node")
    return {
        values[node_index]: child.samples[0]
        for values, child in family.children()
        if child.count
    }


def express_latencies():
    obs = Observability()
    net = ExpressNetwork(build_topo(), obs=obs)
    net.run(until=0.1)
    source = net.source(SOURCE)
    channel = source.allocate_channel()
    for member in MEMBERS:
        net.host(member).subscribe(channel)
    net.settle()
    source.send(channel)
    net.settle()
    return registry_latencies(obs)


def group_latencies(protocol, spt=False):
    obs = Observability()
    net = GroupNetwork(build_topo(), protocol=protocol, rp=RP, obs=obs)
    for member in MEMBERS:
        net.join(member, GROUP)
    net.settle()
    if spt:
        for member in MEMBERS:
            net.switch_to_spt(member, SOURCE, GROUP)
        net.settle()
    net.send(SOURCE, GROUP)
    net.settle()
    state = net.total_state()
    return registry_latencies(obs), state


def test_x8_live_latency(benchmark):
    express = benchmark.pedantic(express_latencies, rounds=1, iterations=1)
    pim_shared, pim_shared_state = group_latencies("pim")
    pim_spt, pim_spt_state = group_latencies("pim", spt=True)
    cbt, cbt_state = group_latencies("cbt")

    assert set(express) == set(pim_shared) == set(pim_spt) == set(cbt) == set(MEMBERS)
    worst = {
        "express": max(express.values()),
        "pim-shared": max(pim_shared.values()),
        "pim-spt": max(pim_spt.values()),
        "cbt": max(cbt.values()),
    }
    # EXPRESS is never slower than the RP detour...
    assert worst["express"] <= worst["pim-shared"] + 1e-9
    assert worst["express"] <= worst["cbt"] + 1e-9
    # ...and SPT switchover buys the shared tree's latency back with
    # extra state (§4.4's tradeoff, live).
    assert worst["pim-spt"] <= worst["pim-shared"] + 1e-9
    assert pim_spt_state > pim_shared_state

    def row(name, latencies, state):
        mean = sum(latencies.values()) / len(latencies)
        return (
            f"  {name:<12} {mean * 1000:>9.2f} ms {max(latencies.values()) * 1000:>9.2f} ms"
            f"   {state if state else '-':>6}"
        )

    report(
        "x8_live_latency",
        [
            "X8: measured delivery latency, one send to 4 members (live stacks)",
            f"    source={SOURCE}, RP/core={RP} (deliberately off-path)",
            "",
            "  stack             mean       worst    router-state",
            row("express", express, None),
            row("pim-shared", pim_shared, pim_shared_state),
            row("pim-spt", pim_spt, pim_spt_state),
            row("cbt", cbt, cbt_state),
            "",
            "  -> EXPRESS delivers at shortest-path latency with per-source",
            "     state; PIM buys that latency back only via (S,G) trees;",
            "     shared trees pay the RP/core detour in wall-clock time",
        ],
    )
