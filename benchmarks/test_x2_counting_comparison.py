"""X2 — counting: ECMP in-network aggregation vs application-layer
schemes (§7.3).

The paper's claims, measured:

* ECMP counting is exact, with one message per tree link and at most
  ``fanout`` messages arriving at any single node — no implosion by
  construction.
* Suppression-based polling risks "serious feedback implosion ... if
  the suppressing reply ... is lost on any large branch of the tree or
  if misbehaving clients respond when they should not".
* "Multi-round schemes ... avoid the implosion risk, but are slower."
"""

import pytest
from conftest import report

from repro import ExpressNetwork, TopologyBuilder
from repro.appcount import (
    MultiRoundEstimator,
    ProbabilisticPollEstimator,
    SuppressionPollEstimator,
)


def build_counting_net(depth=3, fanout=4):
    topo = TopologyBuilder.balanced_tree(depth=depth, fanout=fanout)
    topo.add_node("src")
    topo.add_link("src", "r", delay=0.001)
    leaves = [f"d{depth}_{i}" for i in range(fanout**depth)]
    net = ExpressNetwork(topo, hosts=leaves + ["src"])
    net.run(until=0.1)
    return net, leaves


def test_x2_ecmp_exactness_and_load(benchmark):
    net, leaves = build_counting_net()
    source = net.source("src")
    channel = source.allocate_channel()
    for leaf in leaves:
        net.host(leaf).subscribe(channel)
    net.settle()

    rx_before = {
        name: agent.stats.get("counts_rx") for name, agent in net.ecmp_agents.items()
    }

    def query():
        result = source.count_query(channel, timeout=5.0)
        net.settle(6.0)
        return result

    result = benchmark.pedantic(query, rounds=1, iterations=1)
    assert result.count == len(leaves)  # exact
    assert not result.partial

    per_node_replies = [
        agent.stats.get("counts_rx") - rx_before[name]
        for name, agent in net.ecmp_agents.items()
    ]
    max_at_any_node = max(per_node_replies)
    assert max_at_any_node <= 4  # bounded by the fanout — no implosion

    report(
        "x2_ecmp_counting",
        [
            "X2: ECMP CountQuery on a 64-subscriber fanout-4 tree",
            f"  exact count:              {result.count} / {len(leaves)}",
            f"  max Count replies at any one node: {max_at_any_node} (= tree fanout)",
            f"  total reply messages:     {sum(per_node_replies)} (one per tree edge)",
            "  -> exact, implosion-free by construction",
        ],
    )


def test_x2_baseline_comparison(benchmark):
    """Accuracy and source load of the application-layer baselines at
    Super-Bowl-ish scales (analytic Monte Carlo; seeded)."""
    n = 1_000_000

    def run_all():
        prob = ProbabilisticPollEstimator(reply_probability=1e-4, seed=1).poll(n)
        healthy = SuppressionPollEstimator(seed=2).poll(n)
        lossy = SuppressionPollEstimator(suppression_loss=0.05, seed=3).poll(n)
        rounds = MultiRoundEstimator(seed=4).estimate(n)
        return prob, healthy, lossy, rounds

    prob, healthy, lossy, rounds = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Claims: lossy suppression implodes; multi-round stays bounded but
    # needs multiple rounds; probabilistic polling needs N-dependent
    # tuning to stay accurate AND bounded.
    assert lossy.implosion
    assert not rounds.total_replies > 10_000
    assert rounds.rounds > 1

    report(
        "x2_counting_comparison",
        [
            f"X2: group-size estimation at N = {n:,}",
            "",
            "  scheme                     estimate      msgs@source   notes",
            f"  ECMP (in-network)         {n:>10,}   fanout-bounded   exact (see x2_ecmp_counting)",
            f"  prob. polling p=1e-4      {prob.estimate:>10,.0f}   {prob.messages_at_source:>13,}   needs N to choose p",
            f"  suppression (healthy)     {healthy.estimate:>10,.0f}   {healthy.messages_at_source:>13,}   high variance",
            f"  suppression (5% loss)     {lossy.estimate:>10,.0f}   {lossy.messages_at_source:>13,}   IMPLOSION={lossy.implosion}",
            f"  multi-round doubling      {rounds.estimate:>10,.0f}   {rounds.messages_at_source:>13,}   {rounds.rounds} rounds (slower)",
            "",
            "  -> the §7.3 ordering: ECMP exact & bounded; suppression",
            "     implodes under loss/misbehaviour; multi-round is safe but slow",
        ],
    )


def test_x2_counting_latency_scales_with_depth(benchmark):
    """ECMP count latency ~ tree depth (round trip down and up), which
    "grows logarithmically with the group size"."""
    latencies = {}
    for depth, fanout in ((2, 8), (3, 4), (6, 2)):
        net, leaves = build_counting_net(depth=depth, fanout=fanout)
        source = net.source("src")
        channel = source.allocate_channel()
        for leaf in leaves[: 2**depth]:
            net.host(leaf).subscribe(channel)
        net.settle()
        started = net.sim.now
        result = source.count_query(channel, timeout=10.0)
        net.settle(11.0)
        latencies[depth] = result.completed_at - started

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert latencies[2] < latencies[6]

    report(
        "x2_latency_vs_depth",
        [
            "X2: CountQuery completion time vs tree depth (1ms links)",
            *[f"  depth {d}: {t * 1000:7.1f} ms" for d, t in sorted(latencies.items())],
            "  -> linear in depth; depth is log of group size",
        ],
    )
