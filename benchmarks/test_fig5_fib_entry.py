"""FIG5 — Figure 5: the 12-byte EXPRESS FIB entry.

Reproduces the entry format (32-bit source, 24-bit dest, 5-bit
incoming interface, 32-bit outgoing bitmap in 12 bytes) and measures
the data-plane lookup rate the format supports in this implementation.
The paper's hardware point of comparison is "4 nanosecond SRAMs that
deliver about 100 million lookups per second"; a Python dict is orders
of magnitude slower, but the *per-entry memory* — the thing Figure 6
prices — is exactly 12 bytes either way.
"""

from conftest import report

from repro.inet.addr import parse_address, ssm_address
from repro.routing.fib import FIB_ENTRY_BYTES, FibEntry, MulticastFib

S = parse_address("171.64.0.1")


def test_fig5_entry_format(benchmark):
    entry = FibEntry(
        source=S, dest_suffix=0x00ABCD, incoming_interface=3, outgoing=0b10110
    )
    packed = benchmark(entry.pack)
    assert len(packed) == FIB_ENTRY_BYTES == 12
    assert FibEntry.unpack(packed) == entry

    report(
        "fig5_fib_entry",
        [
            "Figure 5: EXPRESS FIB entry format",
            f"  paper:    source 32b | dest 24b | iif 5b | oifs 32b = 12 bytes",
            f"  measured: pack() -> {len(packed)} bytes "
            f"(fields round-trip exactly)",
            f"  layout:   {packed.hex(' ')}",
        ],
    )


def test_fig5_lookup_rate(benchmark):
    """Data-plane lookup throughput over a populated FIB."""
    fib = MulticastFib()
    for suffix in range(10_000):
        entry = fib.install(S, ssm_address(suffix), incoming_interface=1)
        entry.add_outgoing(2)
    group = ssm_address(5_000)

    result = benchmark(fib.lookup, S, group, 1)
    assert result == [2]

    report(
        "fig5_lookup_rate",
        [
            "Figure 5 (context): exact-match (S,E) lookup",
            "  paper hardware: ~100M lookups/s (4ns SRAM)",
            f"  this implementation: pure-Python dict, {len(fib)} entries,",
            f"  memory at 12 B/entry: {fib.memory_bytes():,} bytes",
            "  (absolute lookup speed is substrate-dependent; the claim",
            "   under test is the 12-byte entry and exact-match+iif check)",
        ],
    )
