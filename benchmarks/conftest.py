"""Shared helpers for the reproduction benchmarks.

Each benchmark regenerates one table or figure from the paper's
evaluation (see DESIGN.md's experiment index), asserts the *shape* of
the paper's claim, and writes a human-readable report to
``benchmarks/results/<experiment>.txt`` (also echoed to stdout; run
pytest with ``-s`` to see it live).
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(name: str, lines: list) -> str:
    """Write (and print) one experiment's reproduction table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(str(line) for line in lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}")
    return text


def ascii_series(
    title: str,
    series: dict,
    width: int = 56,
    height: int = 12,
) -> list:
    """Render ``{label: [(x, y), ...]}`` as a small ASCII chart.

    Each label plots with its first character. Returns report lines.
    """
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        return [title, "  (no data)"]
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for label, values in series.items():
        mark = label[0]
        for x, y in values:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = mark
    lines = [title]
    for index, row in enumerate(grid):
        y_value = y_hi - index * y_span / (height - 1)
        lines.append(f"  {y_value:8.0f} |{''.join(row)}")
    lines.append(f"  {'':8}  {'-' * width}")
    lines.append(
        f"  {'':8}  {x_lo:<10.0f}{'':{max(width - 20, 0)}}{x_hi:>10.0f}"
    )
    legend = "   ".join(f"{label[0]} = {label}" for label in series)
    lines.append(f"  legend: {legend}")
    return lines
