"""X7 — the §1 interference experiment, live on both models.

"A third party can maliciously or carelessly send its own high-rate
data stream to the Super Bowl multicast address, say at the moment of
the crucial touchdown, interfering with reception ... this Super Bowl
application and many others are simply not feasible without source
access control."

Measured on running protocol stacks: the same attack against (a) a
PIM-SM group, (b) a DVMRP group, and (c) an EXPRESS channel. In the
group model every member receives the attacker's packets (and the
packet-amplifying tree multiplies them); in EXPRESS they are counted
and dropped at the first hop.
"""

import pytest
from conftest import report

from repro import ExpressNetwork, TopologyBuilder
from repro.groupmodel import GroupNetwork
from repro.inet.addr import parse_address
from repro.netsim.packet import Packet

GROUP = parse_address("224.77.0.1")
LEGIT = "h0_0_0"
ATTACKER = "h2_1_1"
MEMBERS = ["h1_0_0", "h1_1_0", "h2_0_0", "h0_1_0"]
ATTACK_PACKETS = 20


def attack_group_model(protocol, rp=None):
    topo = TopologyBuilder.isp(n_transit=3, stubs_per_transit=2, hosts_per_stub=2)
    kwargs = {"rp": rp} if protocol == "pim" else {}
    net = GroupNetwork(topo, protocol=protocol, **kwargs)
    for member in MEMBERS:
        net.join(member, GROUP)
    net.settle()
    net.send(LEGIT, GROUP, payload="feed")
    net.settle()
    for _ in range(ATTACK_PACKETS):
        net.send(ATTACKER, GROUP, payload="attack")
    net.settle()
    per_member = [net.delivered(member, GROUP) for member in MEMBERS]
    attacker_copies = sum(count - 1 for count in per_member)  # minus the feed
    return per_member, attacker_copies


def attack_express():
    topo = TopologyBuilder.isp(n_transit=3, stubs_per_transit=2, hosts_per_stub=2)
    net = ExpressNetwork(topo)
    net.run(until=0.1)
    source = net.source(LEGIT)
    channel = source.allocate_channel()
    for member in MEMBERS:
        net.host(member).subscribe(channel)
    net.settle()
    source.send(channel, payload="feed")
    net.settle()
    for _ in range(ATTACK_PACKETS):
        packet = Packet(
            src=net.host(ATTACKER).address, dst=channel.group, proto="data"
        )
        net.topo.node(ATTACKER).send(packet, 0)
    net.settle()
    per_member = [
        net.ecmp_agents[m].subscriptions[channel].packets_received for m in MEMBERS
    ]
    drops = sum(fib.no_match_drops for fib in net.fibs.values())
    return per_member, drops


def test_x7_interference(benchmark):
    pim_members, pim_attack_copies = attack_group_model("pim", rp="t1")
    dvmrp_members, dvmrp_attack_copies = attack_group_model("dvmrp")
    express_members, express_drops = benchmark.pedantic(
        attack_express, rounds=1, iterations=1
    )

    # The group model delivers the attack to every member...
    assert all(count == 1 + ATTACK_PACKETS for count in pim_members)
    assert all(count == 1 + ATTACK_PACKETS for count in dvmrp_members)
    assert pim_attack_copies == len(MEMBERS) * ATTACK_PACKETS
    # ...EXPRESS delivers only the source's feed.
    assert all(count == 1 for count in express_members)
    assert express_drops >= ATTACK_PACKETS

    report(
        "x7_interference",
        [
            f"X7: {ATTACK_PACKETS} attack packets to the feed address "
            f"({len(MEMBERS)} members, live stacks)",
            "",
            "  model            per-member received   attack copies delivered",
            f"  PIM-SM (live)    {pim_members}   {pim_attack_copies}",
            f"  DVMRP (live)     {dvmrp_members}   {dvmrp_attack_copies}",
            f"  EXPRESS (live)   {express_members}   0"
            f"  ({express_drops} counted-and-dropped)",
            "",
            "  -> the group model amplifies one misbehaving sender to",
            f"     every member ({len(MEMBERS)}x amplification here; 10M-x for",
            "     the Super Bowl); EXPRESS drops it at the first FIB miss",
        ],
    )
