"""FIG6/T1 — Figure 6 and §5.1: the FIB memory cost model.

Regenerates both worked examples (the 10-way conference and the
100,000-subscriber stock ticker), reporting the formula's value next to
the paper's printed value, and cross-checks the k*n*h entry bound
against a *measured* tree built by the live ECMP implementation.
"""

import pytest
from conftest import report

from repro import ExpressNetwork, TopologyBuilder
from repro.costmodel.fib_cost import (
    NETWORK_DIAMETER_HOPS,
    FibCostModel,
    conference_example,
    stock_ticker_example,
)


def test_fig6_worked_examples(benchmark):
    model = FibCostModel()
    conference = benchmark(conference_example, model)
    ticker = stock_ticker_example(model)

    # Shape assertions: per-entry price matches the paper exactly; the
    # totals stay under the paper's own bounds.
    assert model.entry_purchase_cost() == pytest.approx(0.00066)
    assert conference["formula_cost_dollars"] < 0.08
    assert ticker["formula_yearly_dollars"] < 20_000

    report(
        "fig6_fib_cost_model",
        [
            "Figure 6 / §5.1: FIB memory cost model (m*e*t_s / (t_r*u))",
            f"  per-entry purchase cost: ${model.entry_purchase_cost():.5f}"
            f"   (paper: $.00066)",
            "",
            "  10-way conference (k=10 ch, n=10 recv, h=25 hops, 20 min):",
            f"    formula:      ${conference['formula_cost_dollars']:.4f} total,"
            f" ${conference['formula_cost_per_channel']:.5f}/channel",
            f"    paper prints: ${conference['paper_printed_total']:.3f} total,"
            f" ${conference['paper_printed_per_channel']:.4f}/channel",
            "    paper bound:  'less than eight cents' -> holds for both",
            "",
            "  100k-subscriber stock ticker (200k tree links, 1 year):",
            f"    formula:      ${ticker['formula_yearly_dollars']:,.0f}/yr"
            f" = {ticker['formula_cents_per_subscriber_year']:.1f} c/sub-yr",
            f"    paper prints: ${ticker['paper_printed_yearly']:,.0f}/yr",
            f"    comparison:   cable lease ~$12/viewer-yr; TV channel sale $25/viewer",
            "    -> FIB memory is noise next to the application's value (paper's claim)",
        ],
    )


def test_fig6_bound_vs_measured_tree(benchmark):
    """The k*n*h bound is a *worst case*: a real tree shares links, so
    measured entries <= k*n*h, with equality only in star topologies."""
    topo = TopologyBuilder.isp(n_transit=4, stubs_per_transit=3, hosts_per_stub=2)
    net = ExpressNetwork(topo)
    net.run(until=0.1)
    source = net.source("h0_0_0")
    channel = source.allocate_channel()
    members = [name for name in sorted(net.host_names) if name != "h0_0_0"][:12]

    def build():
        for member in members:
            net.host(member).subscribe(channel)
        net.settle()
        return net.fib_entries_total()

    measured = benchmark.pedantic(build, rounds=1, iterations=1)
    max_hops = max(net.routing.hop_count(m, "h0_0_0") for m in members)
    bound = 1 * len(members) * max_hops

    assert 0 < measured <= bound

    report(
        "fig6_bound_vs_measured",
        [
            "Figure 6 bound vs a measured EXPRESS tree (ISP topology):",
            f"  k*n*h worst-case bound: 1 x {len(members)} x {max_hops} = {bound} entries",
            f"  measured FIB entries:   {measured}",
            f"  sharing factor:         {bound / measured:.1f}x"
            "  (branches share links, as §5.1 anticipates)",
        ],
    )
