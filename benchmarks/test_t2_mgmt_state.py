"""T2 — §5.2: management-level state cost.

The paper's accounting: 32-byte count records, fanout 2 + upstream,
2 outstanding counts, 8-byte key = 200 bytes/channel; "less than
1/50-th of a cent" at $1/MB DRAM. We regenerate the model table AND
measure the live per-channel state of a running router against it.
"""

import pytest
from conftest import report

from repro import ExpressNetwork, TopologyBuilder
from repro.core.ecmp.state import management_state_bytes
from repro.costmodel.state_cost import ManagementStateModel


def test_t2_model_table(benchmark):
    model = ManagementStateModel()
    bytes_per_channel = benchmark(model.channel_bytes)

    assert bytes_per_channel == 200
    assert model.channel_cost_dollars() <= 0.01 / 50

    rows = ["§5.2: management (DRAM) state per channel",
            f"  paper: 3 records x 2 counts x 32 B + 8 B key = 200 B",
            f"  model: {bytes_per_channel} B -> ${model.channel_cost_dollars():.6f}/channel-yr",
            "",
            "  linear scaling (the §5 'scales linearly' claim):"]
    for channels in (1_000, 100_000, 1_000_000):
        rows.append(
            f"    {channels:>9,} channels: {model.router_bytes(channels) / 1e6:8.1f} MB"
            f"  ${model.router_cost_dollars(channels):10,.2f}"
        )
    assert model.router_bytes(1_000_000) == 1000 * model.router_bytes(1_000)
    report("t2_mgmt_state_model", rows)


def test_t2_live_state_vs_model(benchmark):
    """Measure a live mid-tree router's per-channel state with the
    paper's own accounting rules."""
    topo = TopologyBuilder.balanced_tree(depth=2, fanout=2)
    topo.add_node("src")
    topo.add_link("src", "r", delay=0.001)
    leaves = [f"d2_{i}" for i in range(4)]
    net = ExpressNetwork(topo, hosts=leaves + ["src"])
    net.run(until=0.1)
    source = net.source("src")

    def build():
        channels = []
        for _ in range(50):
            channel = source.allocate_channel()
            for leaf in leaves:
                net.host(leaf).subscribe(channel)
            channels.append(channel)
        net.settle()
        return channels

    channels = benchmark.pedantic(build, rounds=1, iterations=1)
    # d1_0 is a mid-tree router with fanout 2 + an upstream: the
    # paper's modelled router.
    agent = net.ecmp_agents["d1_0"]
    assert len(agent.channels) == 50
    per_channel = [
        management_state_bytes(state, outstanding_counts=2, authenticated=True)
        for state in agent.channels.values()
    ]
    measured = sum(per_channel) / len(per_channel)

    assert measured == 200  # fanout-2 router matches the model exactly

    report(
        "t2_live_state",
        [
            "§5.2: live router state vs model (router d1_0, fanout 2):",
            f"  channels on router: {len(agent.channels)}",
            f"  measured per-channel bytes (paper accounting): {measured:.0f}",
            "  model: 200 B  -> exact match for the modelled fanout",
        ],
    )
