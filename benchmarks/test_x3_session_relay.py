"""X3 — session relay cost/performance (§4.5).

Claims measured:

* "the maximum relayed delay from a sender to the most distant
  subscriber is at most twice the distance from the most distant
  subscriber to the session relay itself, assuming symmetric paths."
* Hot standby "adds additional state (approximately twice as much)";
  cold standby saves that state but pays a join on failover.
* Application placement matters: an SR at the topological center beats
  an SR in a corner (§4.2's placement argument).
"""

import pytest
from conftest import report

from repro import ExpressNetwork, TopologyBuilder
from repro.relay import (
    SessionParticipant,
    SessionRelay,
    StandbyCoordinator,
    StandbyMode,
)

PARTICIPANTS = ["h1_0_0", "h1_1_1", "h2_0_0", "h3_1_0", "h0_1_1"]


def build_net():
    topo = TopologyBuilder.isp(n_transit=4, stubs_per_transit=2, hosts_per_stub=2)
    net = ExpressNetwork(topo)
    net.run(until=0.1)
    return net


def test_x3_relay_delay_bound(benchmark):
    net = build_net()
    relay = SessionRelay(net, "h0_0_0")
    members = [SessionParticipant(net, name, relay) for name in PARTICIPANTS]
    net.settle()

    def speak():
        members[0].speak("question")
        net.settle()

    benchmark.pedantic(speak, rounds=1, iterations=1)
    for member in members:
        assert [m.body for m in member.heard_talks] == ["question"]

    distance = net.routing.distance
    max_member_to_sr = max(distance(name, "h0_0_0") for name in PARTICIPANTS)
    rows = [
        "X3: relayed delay vs the 2x bound (§4.5)",
        f"  SR at h0_0_0; farthest member is {max_member_to_sr * 1000:.1f} ms away",
        "",
        "  sender -> receiver        relayed      direct    relayed <= 2*max(d_to_SR)",
    ]
    bound = 2 * max_member_to_sr
    for sender in PARTICIPANTS[:2]:
        for receiver in PARTICIPANTS:
            if receiver == sender:
                continue
            relayed = distance(sender, "h0_0_0") + distance("h0_0_0", receiver)
            direct = distance(sender, receiver)
            assert relayed <= bound + 1e-9
            rows.append(
                f"  {sender} -> {receiver}   {relayed * 1000:7.1f}ms"
                f"   {direct * 1000:7.1f}ms   OK"
            )
    rows.append("")
    rows.append(f"  bound 2*max = {bound * 1000:.1f} ms — holds for every pair")
    report("x3_relay_delay", rows)


def test_x3_sr_placement(benchmark):
    """§4.2: the application picks the SR; a central host beats a
    corner host on worst-case relayed delay."""
    net = build_net()
    distance = net.routing.distance

    def worst_relay_delay(sr):
        return max(
            distance(a, sr) + distance(sr, b)
            for a in PARTICIPANTS
            for b in PARTICIPANTS
            if a != b
        )

    candidates = {name: worst_relay_delay(name) for name in
                  ("h0_0_0", "h1_0_0", "h3_1_1", "h2_0_1")}
    benchmark.pedantic(lambda: worst_relay_delay("h0_0_0"), rounds=1, iterations=1)
    best = min(candidates, key=candidates.get)
    worst = max(candidates, key=candidates.get)
    assert candidates[best] < candidates[worst]

    report(
        "x3_sr_placement",
        [
            "X3: SR placement (worst-case relayed delay per candidate host)",
            *[
                f"  SR at {name}: {delay * 1000:7.1f} ms"
                for name, delay in sorted(candidates.items(), key=lambda kv: kv[1])
            ],
            f"  -> application-controlled placement wins: {best} beats {worst} "
            f"by {(candidates[worst] - candidates[best]) * 1000:.1f} ms",
        ],
    )


def test_x3_hot_vs_cold_standby(benchmark):
    """Hot: ~2x channel state, failover = detection only.
    Cold: 1x state, failover = detection + join."""
    results = {}
    for mode in (StandbyMode.HOT, StandbyMode.COLD):
        net = build_net()
        primary = SessionRelay(net, "h0_0_0", heartbeat_interval=1.0)
        backup = SessionRelay(net, "h0_1_0", heartbeat_interval=1.0)
        coordinator = StandbyCoordinator(net, primary, backup, mode=mode,
                                         heartbeat_interval=1.0)
        members = [SessionParticipant(net, name, primary) for name in PARTICIPANTS]
        for member in members:
            coordinator.enroll(member)
        net.settle(3.0)

        primary_state = sum(
            1 for fib in net.fibs.values()
            if fib.get(primary.channel.source, primary.channel.group)
        )
        standby_state = coordinator.standby_state_entries()

        coordinator.fail_primary()
        failed_at = net.sim.now
        net.run(until=net.sim.now + 15)
        backup.speak_from_relay("carrying on")
        net.run(until=net.sim.now + 10)
        assert coordinator.all_recovered()
        worst_recovery = max(
            record.recovered_at - failed_at
            for record in coordinator.failed_over.values()
        )
        results[mode] = (primary_state, standby_state, worst_recovery)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    hot_state = results[StandbyMode.HOT][1]
    cold_state = results[StandbyMode.COLD][1]
    assert hot_state > 0 and cold_state == 0  # hot pre-builds the tree
    # Hot recovery is never slower than cold.
    assert results[StandbyMode.HOT][2] <= results[StandbyMode.COLD][2] + 1e-9

    rows = [
        "X3: hot vs cold standby (§4.2, §4.5)",
        "",
        "  mode   primary-FIB  standby-FIB(pre-failure)  worst failover",
    ]
    for mode, (primary_state, standby_state, recovery) in results.items():
        rows.append(
            f"  {mode.value:<5} {primary_state:>11}  {standby_state:>24}"
            f"  {recovery:>12.2f} s"
        )
    rows += [
        "",
        "  -> hot: pre-built backup tree (~2x state), detection-bound failover",
        "     cold: zero standby state, pays the join at failover time",
    ]
    report("x3_standby", rows)
