"""T3 — §5.3: control traffic of the million-channel scenario.

"the router receives four million Count messages every 20 minutes, and
sends two million ... 3,333 requests per second ... approximately 5000
Count events per second. ... approximately 92 16-byte Count messages
fit in a 1480-byte maximum-sized TCP segment ... a router would receive
36 (3333/92) data segments, or 424 kilobits per second of control
traffic, and send half as much."

We regenerate every number from the model, verify the 16-byte wire
size against the real codec, and measure batch encode throughput.
"""

import pytest
from conftest import report

from repro.core.channel import Channel
from repro.core.ecmp.countids import SUBSCRIBER_ID
from repro.core.ecmp.messages import COUNT_WIRE_BYTES, Count, encode_message
from repro.costmodel.maintenance import MillionChannelScenario, counts_per_segment


def test_t3_scenario_numbers(benchmark):
    scenario = benchmark(MillionChannelScenario)

    assert scenario.received_per_lifetime() == 4_000_000
    assert scenario.sent_per_lifetime() == 2_000_000
    assert scenario.receive_rate() == pytest.approx(3333, rel=0.001)
    assert scenario.event_rate() == pytest.approx(5000, rel=0.001)
    assert counts_per_segment() == 92
    assert scenario.receive_segments_per_second() == pytest.approx(36.2, rel=0.01)
    assert scenario.receive_bandwidth_bps() == pytest.approx(424_000, rel=0.02)

    report(
        "t3_control_traffic",
        [
            "§5.3: million-channel scenario (1M channels, 20-min lifetime, fanout 2)",
            "                              paper        model",
            f"  Counts received / 20 min   4,000,000    {scenario.received_per_lifetime():,}",
            f"  Counts sent / 20 min       2,000,000    {scenario.sent_per_lifetime():,}",
            f"  receive rate               3,333/s      {scenario.receive_rate():,.0f}/s",
            f"  total event rate           ~5,000/s     {scenario.event_rate():,.0f}/s",
            f"  Counts per 1480-B segment  92           {counts_per_segment()}",
            f"  segments received          36/s         {scenario.receive_segments_per_second():.1f}/s",
            f"  control bandwidth in       424 kbit/s   {scenario.receive_bandwidth_bps() / 1000:.0f} kbit/s",
            f"  control bandwidth out      212 kbit/s   {scenario.send_bandwidth_bps() / 1000:.0f} kbit/s",
        ],
    )


def test_t3_wire_batching(benchmark):
    """Verify the codec's Count really is 16 bytes and measure encoding
    a full segment's worth (92 messages)."""
    channel = Channel.of(0x0A000001, 42)
    messages = [
        Count(channel=channel, count_id=SUBSCRIBER_ID, count=i) for i in range(92)
    ]

    def encode_segment() -> bytes:
        return b"".join(encode_message(m) for m in messages)

    segment = benchmark(encode_segment)
    assert COUNT_WIRE_BYTES == 16
    assert len(segment) == 92 * 16 == 1472
    assert len(segment) <= 1480

    report(
        "t3_wire_batching",
        [
            "§5.3: Count batching into Ethernet TCP segments",
            f"  Count wire size: {COUNT_WIRE_BYTES} bytes (paper: 16)",
            f"  92 Counts encode to {len(segment)} bytes <= 1480-byte segment",
        ],
    )
