"""FIG7 — Figure 7: the proactive-counting error tolerance curves.

Regenerates the curve family e(dt) for the two α values the paper
simulates (4 and 2.5), checks the properties the caption asserts —
"τ controls the x-intercept — the maximum delay until any change is
transmitted upstream. α controls the rate of decay without changing the
maximum allowed error tolerance" — and prints the sampled series.
"""

import pytest
from conftest import report

from repro.core.proactive import ToleranceCurve

TAU = 120.0
E_MAX = 1.0


def test_fig7_curves(benchmark):
    fast = ToleranceCurve(e_max=E_MAX, alpha=4.0, tau=TAU)
    slow = ToleranceCurve(e_max=E_MAX, alpha=2.5, tau=TAU)

    benchmark(fast.tolerance, 30.0)

    samples = list(range(0, 121, 10))
    series = {
        4.0: [fast.tolerance(dt) for dt in samples],
        2.5: [slow.tolerance(dt) for dt in samples],
    }

    # Same clamp (α does not change e_max)...
    assert series[4.0][0] == series[2.5][0] == E_MAX
    # ...same x-intercept at τ...
    assert series[4.0][-1] == series[2.5][-1] == 0.0
    # ...but α=4 decays strictly faster in the interior.
    for fast_value, slow_value, dt in zip(series[4.0], series[2.5], samples):
        if 0 < dt < TAU and slow_value < E_MAX:
            assert fast_value < slow_value
    # Monotone non-increasing.
    for values in series.values():
        assert all(a >= b for a, b in zip(values, values[1:]))

    rows = [
        "Figure 7: error tolerance curves e(dt) = clamp(ln(tau/dt)/alpha)",
        f"  tau = {TAU:.0f}, e_max = {E_MAX}",
        "   dt    alpha=4.0   alpha=2.5",
    ]
    for dt, fast_value, slow_value in zip(samples, series[4.0], series[2.5]):
        rows.append(f"  {dt:>4}   {fast_value:9.3f}   {slow_value:9.3f}")
    rows.append("  -> same clamp, same x-intercept, alpha sets the decay rate")
    report("fig7_tolerance_curves", rows)


def test_fig7_max_delay_guarantee(benchmark):
    """The x-intercept really is "the maximum delay until any change is
    transmitted upstream": any nonzero error violates the curve at τ."""
    curve = ToleranceCurve(e_max=E_MAX, alpha=2.5, tau=TAU)
    benchmark(curve.deadline_for_error, 0.01)
    for error in (1e-6, 1e-3, 0.1, 0.9, 5.0):
        assert curve.deadline_for_error(error) <= TAU
        assert error > curve.tolerance(TAU)

    report(
        "fig7_max_delay",
        [
            "Figure 7 guarantee: any pending change is sent within tau",
            f"  deadline(1e-6) = {curve.deadline_for_error(1e-6):.1f}s <= tau={TAU:.0f}s",
            f"  deadline(0.5)  = {curve.deadline_for_error(0.5):.1f}s",
            f"  deadline(5.0)  = {curve.deadline_for_error(5.0):.1f}s (clamp region)",
        ],
    )
