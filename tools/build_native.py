#!/usr/bin/env python
"""Optionally compile the hot event-core modules with mypyc.

The native event core (arena-pooled events, pure-bucket bulk
scheduling, batch slot dispatch — see docs/performance.md) is pure
Python and fast enough to clear the CI floors on its own. This script
is the *optional* extra step: when mypyc is installed it compiles the
hot modules to C extensions in place, which CPython then prefers over
the .py files at import time. When mypyc is NOT installed — the
supported default; the repo never requires a compiler — the script
prints what it would have done and exits 0, so build pipelines can run
it unconditionally.

Usage:

    python tools/build_native.py            # compile if mypyc present
    python tools/build_native.py --check    # report status, change nothing
    python tools/build_native.py --clean    # remove compiled artifacts

Escape hatches compose: even with compiled modules on disk,
``REPRO_NATIVE=0`` still disables arena pooling and batch dispatch at
runtime (the flag gates behaviour, not imports), and ``--clean``
returns the tree to pure-Python imports entirely.
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

#: The profiler-identified hot modules, in dependency order. Kept
#: deliberately short: compiling rarely-hot modules buys nothing and
#: every entry is one more module that must stay mypyc-compatible.
HOT_MODULES = (
    "repro/netsim/arena.py",
    "repro/core/accounting.py",
)


def mypyc_available() -> bool:
    try:
        import mypyc  # noqa: F401
    except ImportError:
        return False
    return True


def compiled_artifacts() -> list[str]:
    """Existing compiled extensions/build dirs for the hot modules."""
    found = []
    for module in HOT_MODULES:
        stem = os.path.join(SRC, module[: -len(".py")])
        directory, name = os.path.split(stem)
        if not os.path.isdir(directory):
            continue
        for entry in os.listdir(directory):
            if entry.startswith(name + ".") and entry.endswith((".so", ".pyd")):
                found.append(os.path.join(directory, entry))
    build_dir = os.path.join(REPO_ROOT, "build")
    if os.path.isdir(build_dir):
        found.append(build_dir)
    return found


def clean() -> int:
    removed = compiled_artifacts()
    for path in removed:
        if os.path.isdir(path):
            shutil.rmtree(path)
        else:
            os.remove(path)
    print(f"removed {len(removed)} compiled artifact(s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="report compiler/artifact status without building",
    )
    parser.add_argument(
        "--clean",
        action="store_true",
        help="remove compiled extensions and the build directory",
    )
    args = parser.parse_args(argv)

    if args.clean:
        return clean()

    available = mypyc_available()
    artifacts = compiled_artifacts()
    if args.check:
        print(f"mypyc available: {available}")
        print(f"hot modules: {', '.join(HOT_MODULES)}")
        print(f"compiled artifacts: {len(artifacts)}")
        return 0

    if os.environ.get("REPRO_NATIVE", "") == "0":
        # Building while the runtime escape hatch is pulled would be
        # surprising: the compiled modules would import but the native
        # behaviours stay off. Do nothing loudly.
        print("REPRO_NATIVE=0 set; skipping native build (escape hatch).")
        return 0

    if not available:
        print(
            "mypyc is not installed; skipping the optional compiled core.\n"
            "The pure-Python native core is the supported default — "
            "install mypy (which ships mypyc) to enable this extra step."
        )
        return 0

    files = [os.path.join(SRC, module) for module in HOT_MODULES]
    missing = [f for f in files if not os.path.isfile(f)]
    if missing:
        print(f"hot modules missing: {missing}", file=sys.stderr)
        return 1
    result = subprocess.run(
        [sys.executable, "-m", "mypyc", *files],
        cwd=REPO_ROOT,
        env=dict(os.environ, PYTHONPATH=SRC),
    )
    if result.returncode != 0:
        # A failed compile must never leave the tree half-native.
        clean()
        print("mypyc build failed; tree restored to pure Python.", file=sys.stderr)
        return result.returncode
    print(f"compiled {len(files)} module(s): {', '.join(HOT_MODULES)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
